// Water structure example: run the 2-species water-like reference potential
// (the AIMD stand-in used throughout the reproduction) and print the O-O,
// O-H and H-H radial distribution functions.
//
//   ./water_rdf [--molecules-side=4] [--steps=1500] [--temp=300]
//               [--dp-block-size=0] [--skin=-1] [--rebuild-every=50]
//               [--fused-table=1] [--fitting-precision=inherit]
//               [--checkpoint-every=0]
//               [--checkpoint-file=water_rdf.ckpt] [--restart=FILE]
//               [--ranks=1] [--rebalance-every=0] [--rebalance-damping=0.5]
//
// --dp-block-size=N (N >= 1) additionally re-scores every RDF frame through
// a paper-shaped Deep Potential at EvalOptions::block_size = N and reports
// the evaluation throughput — the knob the ROADMAP asks to tune per system
// (1 = per-atom path, 0 = off).  The DP carries random weights, so the
// numbers measure the compute pipeline, not the physics.  --fused-table=0
// runs the DP scoring through the unfused table-then-GEMM slab pipeline
// (ISSUE 5 ablation baseline).  --fitting-precision=inherit|fp32|bf16
// (ISSUE 9) runs the scoring's fitting net reduced (fp64 head + chain) —
// the fp32 rung is the fast one, bf16 is a storage/accuracy rung.
// --skin / --rebuild-every set the driving simulation's neighbor cadence
// (the paper's steady-state amortization; drift > skin/2 still forces a
// rebuild).  --skin=-1 (the default) auto-picks the largest admissible
// skin, capped at the paper's 2 A.
// --checkpoint-every=N writes a restart file every N completed steps
// (ISSUE 6; 0 = off) to --checkpoint-file; --restart=FILE resumes the
// *dynamics* (positions, velocities, thermostat RNG stream) from a
// checkpoint — the RDF accumulators restart fresh, they are statistics of
// the analysis pass, not simulation state.
// --ranks=N (1, 2, 4, 8 or 16) samples the RDF from a distributed
// DomainEngine world instead of md::Sim: NVE from the thermalized start
// (the distributed engine carries no thermostat), frames gathered to rank
// 0, per-rank checkpoint files.  The reference potential's 6 A cutoff
// needs sub-boxes >= 2*(rcut+skin) wide, so 2 ranks want
// --molecules-side>=8.  --rebalance-every=N / --rebalance-damping=F
// (ISSUE 7, distributed mode only) enable the workload-aware boundary
// shift (0 = off, uniform grid); --dp-block-size scoring stays a
// single-process knob.
#include <cstdio>
#include <memory>
#include <mutex>

#include "water256.hpp"  // bench::water256_model — the shared DP reference
#include "comm/domain_engine.hpp"
#include "core/pair_deepmd.hpp"
#include "md/ghosts.hpp"
#include "md/lattice.hpp"
#include "md/pair_water_ref.hpp"
#include "md/rdf.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "simmpi/simmpi.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/error.hpp"

using namespace dpmd;

namespace {

/// Rank grids the examples support for --ranks (the bench sweep's shapes).
simmpi::CartGrid grid_for_ranks(int ranks) {
  switch (ranks) {
    case 1: return {1, 1, 1};
    case 2: return {2, 1, 1};
    case 4: return {2, 2, 1};
    case 8: return {2, 2, 2};
    case 16: return {4, 2, 2};
    default:
      DPMD_REQUIRE(false, "--ranks must be 1, 2, 4, 8 or 16");
      return {1, 1, 1};
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int side = static_cast<int>(args.get_int("molecules-side", 4));
  const int steps = static_cast<int>(args.get_int("steps", 1500));
  const double temp = args.get_double("temp", 300.0);
  const int dp_block = static_cast<int>(args.get_int("dp-block-size", 0));
  DPMD_REQUIRE(dp_block >= 0,
               "--dp-block-size must be >= 0 (0 skips DP scoring, >= 1 "
               "scores frames at that block size)");
  const double skin = args.get_double("skin", -1.0);  // negative = auto
  const int rebuild_every =
      static_cast<int>(args.get_int("rebuild-every", 50));
  const bool fused_table = args.get_bool("fused-table", true);
  const std::string fitprec_str = args.get("fitting-precision", "inherit");
  DPMD_REQUIRE(fitprec_str == "inherit" || fitprec_str == "fp32" ||
                   fitprec_str == "bf16",
               "--fitting-precision must be inherit, fp32 or bf16");
  DPMD_REQUIRE(rebuild_every >= 1, "--rebuild-every must be >= 1");
  const int checkpoint_every =
      static_cast<int>(args.get_int("checkpoint-every", 0));
  const std::string checkpoint_file =
      args.get("checkpoint-file", "water_rdf.ckpt");
  const std::string restart = args.get("restart", "");
  DPMD_REQUIRE(checkpoint_every >= 0, "--checkpoint-every must be >= 0");
  const int ranks = static_cast<int>(args.get_int("ranks", 1));
  const int rebalance_every =
      static_cast<int>(args.get_int("rebalance-every", 0));
  const double rebalance_damping =
      args.get_double("rebalance-damping", 0.5);
  DPMD_REQUIRE(rebalance_every == 0 || ranks > 1,
               "--rebalance-every needs a distributed run (--ranks > 1)");
  DPMD_REQUIRE(dp_block == 0 || ranks == 1,
               "--dp-block-size scoring runs single-process; drop it with "
               "--ranks > 1");

  Rng rng(11);
  md::Box box;
  md::Atoms atoms = md::make_water_like(side, 0.0334, 0.97, rng, box);
  md::thermalize(atoms, {md::kMassO, md::kMassH}, temp, rng);
  const int natoms = atoms.nlocal;

  const double rmax0 = 0.45 * box.length().x;
  md::RdfAccumulator oo(0, 0, rmax0, 60);
  md::RdfAccumulator oh(0, 1, rmax0, 60);
  md::RdfAccumulator hh(1, 1, rmax0, 60);
  const auto print_rdf = [&](double final_t) {
    AsciiTable table({"r [A]", "g_OO", "g_OH", "g_HH", "g_OO bar"});
    table.set_title("Radial distribution functions");
    const auto goo = oo.result();
    const auto goh = oh.result();
    const auto ghh = hh.result();
    double gmax = 0.1;
    for (const auto& p : goo) gmax = std::max(gmax, p.g);
    for (std::size_t b = 0; b < goo.size(); b += 2) {
      table.add_row({fmt_fix(goo[b].r, 2), fmt_fix(goo[b].g, 2),
                     fmt_fix(goh[b].g, 2), fmt_fix(ghh[b].g, 2),
                     ascii_bar(goo[b].g, gmax, 24)});
    }
    table.print();
    std::printf("final T = %.1f K over %d frames\n", final_t, oo.frames());
  };

  // Distributed sampling leg (--ranks > 1): NVE on a DomainEngine world,
  // frames gathered to rank 0, the ISSUE 7 rebalancer behind
  // --rebalance-every / --rebalance-damping.
  if (ranks > 1) {
    const simmpi::CartGrid grid = grid_for_ranks(ranks);
    const std::vector<Vec3> x0(atoms.x.begin(),
                               atoms.x.begin() + atoms.nlocal);
    const std::vector<Vec3> v0(atoms.v.begin(),
                               atoms.v.begin() + atoms.nlocal);
    const std::vector<int> t0(atoms.type.begin(),
                              atoms.type.begin() + atoms.nlocal);
    std::printf("water-like reference MD (NVE): %d atoms on %d ranks "
                "(%dx%dx%d), %d steps from a %.0f K start, rebalance %s\n",
                natoms, grid.size(), grid.nx(), grid.ny(), grid.nz(), steps,
                temp, rebalance_every > 0 ? "on" : "off");
    double final_t = 0.0;
    std::mutex mu;
    simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
      auto rpair = std::make_shared<md::PairWaterRef>();
      comm::DomainEngine eng(rank, grid, box,
                             {md::kMassO, md::kMassH}, rpair,
                             {.dt_fs = 0.5, .skin = skin,
                              .rebuild_every = rebuild_every,
                              .rebalance_every = rebalance_every,
                              .rebalance_damping = rebalance_damping});
      if (restart.empty()) {
        eng.seed(x0, v0, t0);
      } else {
        eng.restore_checkpoint_file(restart);
        if (rank.rank() == 0) {
          std::printf("restart: resumed from %s.rank* at step %d (RDF "
                      "statistics start fresh)\n",
                      restart.c_str(), eng.steps_done());
        }
      }
      const auto run_block = [&](int nsteps) {
        for (int s = 0; s < nsteps; ++s) {
          eng.step();
          if (checkpoint_every > 0 &&
              eng.steps_done() % checkpoint_every == 0) {
            eng.save_checkpoint_file(checkpoint_file);
          }
        }
      };
      run_block(steps / 3);  // settle from the thermalized start
      for (int block = 0; block < 2 * steps / 30; ++block) {
        run_block(10);
        // gather_all is collective; only rank 0 accumulates.  Positions
        // are unwrapped between rebuilds, so wrap before binning.
        const auto global = eng.gather_all();
        if (rank.rank() == 0) {
          md::Atoms frame;
          for (const auto& ga : global) {
            Vec3 p = ga.x;
            box.wrap(p);
            frame.add_local(p, {0, 0, 0},
                            t0[static_cast<std::size_t>(ga.tag)], ga.tag);
          }
          std::lock_guard lock(mu);
          oo.add_frame(frame, box);
          oh.add_frame(frame, box);
          hh.add_frame(frame, box);
        }
      }
      const double ke = eng.total_kinetic();
      if (rank.rank() == 0) {
        std::lock_guard lock(mu);
        final_t = 2.0 * ke / (3.0 * natoms * 8.617333262e-5);
        std::printf("(%d rebuilds, %d boundary shifts)\n",
                    eng.rebuild_count(), eng.rebalance_count());
      }
    });
    print_rdf(final_t);
    return 0;
  }

  auto pair = std::make_shared<md::PairWaterRef>();
  md::Sim sim(box, std::move(atoms), {md::kMassO, md::kMassH}, pair,
              {.dt_fs = 0.5, .skin = skin, .rebuild_every = rebuild_every});
  sim.set_thermostat(std::make_unique<md::LangevinThermostat>(temp, 0.02, 3));
  if (!restart.empty()) {
    sim.restore_checkpoint_file(restart);
    std::printf("restart: resumed from %s at step %d (RDF statistics start "
                "fresh)\n", restart.c_str(), sim.steps_done());
  }

  // All dynamics run through this wrapper so the checkpoint cadence covers
  // equilibration and sampling alike.
  const auto run_with_ckpt = [&](int nsteps) {
    if (checkpoint_every <= 0) {
      sim.run(nsteps);
      return;
    }
    sim.run(nsteps, 1, [&](int step, const md::Sim& s) {
      if (step % checkpoint_every == 0) {
        s.save_checkpoint_file(checkpoint_file);
      }
    });
  };

  std::printf("water-like reference MD: %d atoms (%d molecules), %d steps at "
              "%.0f K (skin %.2f A%s, rebuild every %d)\n",
              natoms, side * side * side, steps, temp, sim.config().skin,
              skin < 0.0 ? " auto" : "", rebuild_every);
  run_with_ckpt(steps / 3);  // equilibrate

  // Optional DP scoring pipeline (--dp-block-size): evaluates each sampled
  // frame through the batched Deep Potential at the requested block size.
  std::unique_ptr<dp::PairDeepMD> dp_pair;
  if (dp_block >= 1) {
    dp::EvalOptions opts;  // fp64 compressed
    opts.block_size = dp_block;
    opts.fused_table = fused_table;
    // DP scoring is fp64, so the reduced-fitting rungs (ISSUE 9) apply
    // directly: hidden fitting layers fp32/bf16, fp64 head + force chain.
    opts.fitting_precision =
        fitprec_str == "fp32"   ? dp::FittingPrecision::Fp32
        : fitprec_str == "bf16" ? dp::FittingPrecision::Bf16
                                : dp::FittingPrecision::Inherit;
    // Same paper-shaped random-weight model as the compute benches
    // (bench/water256.hpp), so the example and BENCH_compute.json time the
    // identical workload.
    dp_pair = std::make_unique<dp::PairDeepMD>(bench::water256_model(), opts);
  }
  double dp_us = 0.0;
  int dp_frames = 0;

  for (int block = 0; block < 2 * steps / 30; ++block) {
    run_with_ckpt(10);
    oo.add_frame(sim.atoms(), box);
    oh.add_frame(sim.atoms(), box);
    hh.add_frame(sim.atoms(), box);
    if (dp_pair != nullptr) {
      md::Atoms frame = sim.atoms();
      frame.clear_ghosts();
      md::build_periodic_ghosts(frame, box, dp_pair->cutoff());
      md::NeighborList dp_list({dp_pair->cutoff(), 0.0, true});
      dp_list.build(frame, box);
      frame.zero_forces();
      Stopwatch sw;
      dp_pair->compute(frame, dp_list);
      dp_us += sw.elapsed_us();
      ++dp_frames;
    }
  }

  print_rdf(sim.thermo().temperature);
  if (dp_frames > 0) {
    const double us = dp_us / dp_frames;
    std::printf("DP scoring (block size %d): %.0f us/frame, %.2f us/atom "
                "over %d frames\n",
                dp_block, us, us / natoms, dp_frames);
  }
  return 0;
}
