// Copper heating example on the Sutton-Chen EAM reference: ramp the
// thermostat and watch the mean-square displacement take off as the fcc
// lattice loses rigidity — the classic melt signature.
//
//   ./copper_melt [--cells=3] [--steps-per-stage=400]
#include <cstdio>
#include <memory>
#include <vector>

#include "md/lattice.hpp"
#include "md/pair_eam.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace dpmd;

namespace {

/// MSD against a reference snapshot, using unwrapped coordinates.
double msd_of(const md::Sim& sim, const std::vector<Vec3>& ref) {
  const auto& atoms = sim.atoms();
  const Vec3 len = sim.box().length();
  double acc = 0.0;
  for (int i = 0; i < atoms.nlocal; ++i) {
    const auto& img = atoms.image[static_cast<std::size_t>(i)];
    const Vec3 unwrapped = atoms.x[static_cast<std::size_t>(i)] +
                           Vec3{img[0] * len.x, img[1] * len.y,
                                img[2] * len.z};
    acc += (unwrapped - ref[static_cast<std::size_t>(i)]).norm2();
  }
  return acc / atoms.nlocal;
}

std::vector<Vec3> snapshot(const md::Sim& sim) {
  const auto& atoms = sim.atoms();
  const Vec3 len = sim.box().length();
  std::vector<Vec3> ref(static_cast<std::size_t>(atoms.nlocal));
  for (int i = 0; i < atoms.nlocal; ++i) {
    const auto& img = atoms.image[static_cast<std::size_t>(i)];
    ref[static_cast<std::size_t>(i)] =
        atoms.x[static_cast<std::size_t>(i)] +
        Vec3{img[0] * len.x, img[1] * len.y, img[2] * len.z};
  }
  return ref;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int cells = static_cast<int>(args.get_int("cells", 3));
  const int stage_steps = static_cast<int>(args.get_int("steps-per-stage", 400));

  md::Box box;
  md::Atoms atoms = md::make_fcc(3.61, cells, cells, cells, 0, box);
  Rng rng(21);
  md::thermalize(atoms, {md::kMassCu}, 100.0, rng);

  auto pair = std::make_shared<md::PairEamSC>();
  md::Sim sim(box, std::move(atoms), {md::kMassCu}, pair,
              {.dt_fs = 2.0, .skin = 1.5});
  sim.setup();
  std::printf("Sutton-Chen copper, %d atoms; heating ramp with %d steps per "
              "stage\n\n", sim.atoms().nlocal, stage_steps);

  AsciiTable table({"target T [K]", "measured T [K]", "PE/atom [eV]",
                    "MSD [A^2]", "state"});
  for (const double target : {300.0, 800.0, 1300.0, 1800.0, 2400.0}) {
    sim.set_thermostat(
        std::make_unique<md::LangevinThermostat>(target, 0.02,
                                                 static_cast<uint64_t>(target)));
    sim.run(stage_steps);          // equilibrate at the new target
    const auto ref = snapshot(sim);
    sim.run(stage_steps);          // measure diffusion over one stage
    const double msd = msd_of(sim, ref);
    const auto t = sim.thermo();
    table.add_row({fmt_fix(target, 0), fmt_fix(t.temperature, 0),
                   fmt_fix(t.potential / sim.atoms().nlocal, 3),
                   fmt_fix(msd, 2), msd > 1.0 ? "diffusing" : "solid"});
  }
  table.print();
  std::printf("\nrising MSD at high T = loss of lattice rigidity "
              "(Sutton-Chen Cu melts ~1300-1700 K in small PBC cells)\n");
  return 0;
}
