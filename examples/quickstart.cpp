// Quickstart: build an fcc copper box, attach a Deep Potential (random
// weights — swap in DPModel::load(path) for a trained model), and run a
// short NVE trajectory printing LAMMPS-style thermo lines.
//
//   ./quickstart [--steps=200] [--cells=3] [--temp=100] [--precision=fp32]
//                [--block-size=64] [--skin=-1] [--rebuild-every=50]
//                [--fused-table=1] [--fitting-precision=inherit]
//                [--checkpoint-every=0]
//                [--checkpoint-file=quickstart.ckpt] [--restart=FILE]
//                [--ranks=1] [--rebalance-every=0] [--rebalance-damping=0.5]
//
// --block-size sets EvalOptions::block_size (atoms per batched evaluation
// block, §III-B); 1 selects the legacy per-atom path.  Tune it per system
// and thread count — 32-128 are all reasonable (see src/core/README.md).
// --skin / --rebuild-every set the neighbor-list cadence (ISSUE 4, the
// paper's 2 A / 50-step steady state): between rebuilds the engine reuses
// lists AND the packed env-batch structure, so steady-state steps are pure
// GEMM + table work.  --skin=-1 (the default) auto-picks the largest skin
// the cell admits, capped at the paper's 2 A, so the quickstart runs the
// steady state out of the box.  --rebuild-every=1 rebuilds every step (the
// ablation baseline); drift > skin/2 always forces a rebuild regardless.
// --fused-table=0 falls back to the unfused table-then-GEMM slab pipeline
// (ISSUE 5 ablation baseline; 1 = the fused register-resident default).
// --fitting-precision=inherit|fp32|bf16 (ISSUE 9, fp64 pipeline only, i.e.
// --precision=fp64): runs the hidden fitting-net layers reduced (fp32, or
// bf16-stored first-layer weights) with the energy head and the whole
// force chain kept fp64 — the fp32 rung is what puts water-sized systems
// under the fp64 step-time target on x86 (see src/core/README.md).
// --checkpoint-every=N writes a restart file every N completed steps
// (ISSUE 6; 0 = off) to --checkpoint-file; --restart=FILE resumes a
// previous run from its checkpoint — mid-cadence restarts are handled by
// forcing a list rebuild on the first resumed step.
// --ranks=N (1, 2, 4, 8 or 16) runs the same trajectory on a distributed
// DomainEngine world of in-process ranks instead of md::Sim; the DP rcut
// of 6 A needs sub-boxes >= 2*(rcut+skin) wide, so 2 ranks want
// --cells>=7.  --rebalance-every=N / --rebalance-damping=F (ISSUE 7,
// distributed mode only) turn on the workload-aware boundary shift: every
// N steps the ranks allgather their measured pair-phase seconds and the
// next rebuild moves the decomposition planes toward equal cost (0 = off,
// the uniform grid).  Checkpoints in distributed mode are per-rank files
// (<file>.rank<r>) and restore the balanced plane positions.
#include <cstdio>
#include <memory>
#include <mutex>

#include "comm/domain_engine.hpp"
#include "core/pair_deepmd.hpp"
#include "md/lattice.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "simmpi/simmpi.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace dpmd;

namespace {

/// Rank grids the examples support for --ranks (the bench sweep's shapes).
simmpi::CartGrid grid_for_ranks(int ranks) {
  switch (ranks) {
    case 1: return {1, 1, 1};
    case 2: return {2, 1, 1};
    case 4: return {2, 2, 1};
    case 8: return {2, 2, 2};
    case 16: return {4, 2, 2};
    default:
      DPMD_REQUIRE(false, "--ranks must be 1, 2, 4, 8 or 16");
      return {1, 1, 1};
  }
}

constexpr double kBoltzmannEv = 8.617333262e-5;  // eV/K

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int steps = static_cast<int>(args.get_int("steps", 200));
  const int cells = static_cast<int>(args.get_int("cells", 3));
  const double temp = args.get_double("temp", 100.0);
  const std::string prec_str = args.get("precision", "fp32");
  const int block_size = static_cast<int>(args.get_int("block-size", 64));
  DPMD_REQUIRE(block_size >= 1,
               "--block-size must be >= 1 (1 selects the per-atom path)");
  const double skin = args.get_double("skin", -1.0);  // negative = auto
  const int rebuild_every =
      static_cast<int>(args.get_int("rebuild-every", 50));
  const bool fused_table = args.get_bool("fused-table", true);
  const std::string fitprec_str = args.get("fitting-precision", "inherit");
  DPMD_REQUIRE(fitprec_str == "inherit" || fitprec_str == "fp32" ||
                   fitprec_str == "bf16",
               "--fitting-precision must be inherit, fp32 or bf16");
  DPMD_REQUIRE(fitprec_str == "inherit" || prec_str == "fp64",
               "--fitting-precision needs the fp64 pipeline "
               "(--precision=fp64)");
  DPMD_REQUIRE(rebuild_every >= 1, "--rebuild-every must be >= 1");
  const int checkpoint_every =
      static_cast<int>(args.get_int("checkpoint-every", 0));
  const std::string checkpoint_file =
      args.get("checkpoint-file", "quickstart.ckpt");
  const std::string restart = args.get("restart", "");
  DPMD_REQUIRE(checkpoint_every >= 0, "--checkpoint-every must be >= 0");
  const int ranks = static_cast<int>(args.get_int("ranks", 1));
  const int rebalance_every =
      static_cast<int>(args.get_int("rebalance-every", 0));
  const double rebalance_damping =
      args.get_double("rebalance-damping", 0.5);
  DPMD_REQUIRE(rebalance_every == 0 || ranks > 1,
               "--rebalance-every needs a distributed run (--ranks > 1)");

  // 1. A Deep Potential model (paper-shaped nets, scaled-down sel).
  dp::ModelConfig cfg;
  cfg.ntypes = 1;
  cfg.descriptor.rcut = 6.0;
  cfg.descriptor.rcut_smth = 2.0;
  cfg.descriptor.sel = {96};
  cfg.descriptor.emb_widths = {16, 32, 64};
  cfg.descriptor.axis_neurons = 8;
  cfg.fit_widths = {64, 64, 64};
  auto model = std::make_shared<dp::DPModel>(cfg);
  Rng rng(7);
  model->init_random(rng);

  dp::EvalOptions opts;
  opts.precision = prec_str == "fp64"   ? dp::Precision::Double
                   : prec_str == "fp16" ? dp::Precision::MixFp16
                                        : dp::Precision::MixFp32;
  opts.compressed = true;
  opts.block_size = block_size;
  opts.fused_table = fused_table;
  opts.fitting_precision = fitprec_str == "fp32"   ? dp::FittingPrecision::Fp32
                           : fitprec_str == "bf16" ? dp::FittingPrecision::Bf16
                                                   : dp::FittingPrecision::Inherit;

  // 2. The physical system.
  md::Box box;
  md::Atoms atoms = md::make_fcc(3.615, cells, cells, cells, 0, box);
  md::thermalize(atoms, {md::kMassCu}, temp, rng);

  // 3a. Distributed engine (--ranks > 1): the same trajectory on a
  // DomainEngine rank world, with the ISSUE 7 boundary-shift rebalancer
  // available behind --rebalance-every / --rebalance-damping.
  if (ranks > 1) {
    const simmpi::CartGrid grid = grid_for_ranks(ranks);
    const int natoms = atoms.nlocal;
    const std::vector<Vec3> x0(atoms.x.begin(),
                               atoms.x.begin() + atoms.nlocal);
    const std::vector<Vec3> v0(atoms.v.begin(),
                               atoms.v.begin() + atoms.nlocal);
    const std::vector<int> t0(atoms.type.begin(),
                              atoms.type.begin() + atoms.nlocal);
    std::printf("quickstart: %d Cu atoms on %d ranks (%dx%dx%d), %s "
                "precision, %d steps, rebalance %s\n",
                natoms, grid.size(), grid.nx(), grid.ny(), grid.nz(),
                dp::precision_name(opts.precision), steps,
                rebalance_every > 0 ? "on" : "off");
    std::printf("%8s %12s %12s %12s %10s\n", "step", "PE [eV]", "KE [eV]",
                "Etot [eV]", "T [K]");
    const int print_every = std::max(1, steps / 10);
    std::mutex mu;
    simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
      auto rpair = std::make_shared<dp::PairDeepMD>(model, opts);
      comm::DomainEngine eng(rank, grid, box, {md::kMassCu}, rpair,
                             {.dt_fs = 0.5, .skin = skin,
                              .rebuild_every = rebuild_every,
                              .rebalance_every = rebalance_every,
                              .rebalance_damping = rebalance_damping});
      if (restart.empty()) {
        eng.seed(x0, v0, t0);
      } else {
        eng.restore_checkpoint_file(restart);
        if (rank.rank() == 0) {
          std::printf("restart: resumed from %s.rank* at step %d\n",
                      restart.c_str(), eng.steps_done());
        }
      }
      // Collectives run on every rank each cadence step; rank 0 prints.
      const auto thermo_line = [&](int step) {
        const double pe = eng.total_pe();
        const double ke = eng.total_kinetic();
        if (rank.rank() == 0) {
          std::lock_guard lock(mu);
          std::printf("%8d %12.4f %12.4f %12.4f %10.2f\n", step, pe, ke,
                      pe + ke, 2.0 * ke / (3.0 * natoms * kBoltzmannEv));
        }
      };
      for (int s = 0; s < steps; ++s) {
        eng.step();
        if (eng.steps_done() % print_every == 0) {
          thermo_line(eng.steps_done());
        }
        if (checkpoint_every > 0 &&
            eng.steps_done() % checkpoint_every == 0) {
          eng.save_checkpoint_file(checkpoint_file);
        }
      }
      if (rank.rank() == 0) {
        std::lock_guard lock(mu);
        std::printf("\nfinished: %d steps, %d rebuilds, %d boundary "
                    "shifts%s\n",
                    eng.steps_done(), eng.rebuild_count(),
                    eng.rebalance_count(),
                    checkpoint_every > 0 ? " (per-rank checkpoints written)"
                                         : "");
      }
    });
    return 0;
  }

  // 3b. The single-process engine.
  auto pair = std::make_shared<dp::PairDeepMD>(model, opts);
  md::Sim sim(box, std::move(atoms), {md::kMassCu}, pair,
              {.dt_fs = 0.5, .skin = skin, .rebuild_every = rebuild_every});
  if (!restart.empty()) {
    sim.restore_checkpoint_file(restart);
    std::printf("restart: resumed from %s at step %d\n", restart.c_str(),
                sim.steps_done());
  }
  sim.setup();

  std::printf("quickstart: %d Cu atoms, %s precision, %d steps, "
              "block size %d%s%s\n",
              sim.atoms().nlocal, dp::precision_name(opts.precision), steps,
              block_size, block_size <= 1 ? " (per-atom path)" : "",
              fused_table ? "" : " (unfused table)");
  std::printf("cadence: skin %.2f A%s, rebuild every %d steps\n",
              sim.config().skin, skin < 0.0 ? " (auto)" : "", rebuild_every);
  std::printf("%8s %12s %12s %12s %10s\n", "step", "PE [eV]", "KE [eV]",
              "Etot [eV]", "T [K]");
  const auto print = [](int step, const md::Sim& s) {
    const auto t = s.thermo();
    std::printf("%8d %12.4f %12.4f %12.4f %10.2f\n", step, t.potential,
                t.kinetic, t.total(), t.temperature);
  };
  print(sim.steps_done(), sim);
  const int print_every = std::max(1, steps / 10);
  if (checkpoint_every > 0) {
    // Drive the callback every step so printing and checkpointing can run
    // on independent cadences.
    sim.run(steps, 1, [&](int step, const md::Sim& s) {
      if (step % print_every == 0) print(step, s);
      if (step % checkpoint_every == 0) {
        s.save_checkpoint_file(checkpoint_file);
      }
    });
    std::printf("checkpoint: last state written to %s\n",
                checkpoint_file.c_str());
  } else {
    sim.run(steps, print_every, print);
  }

  const auto t = sim.thermo();
  std::printf("\nfinished: total energy %.6f eV after %d steps "
              "(%d neighbor rebuilds)\n", t.total(), sim.steps_done(),
              sim.rebuild_count());
  return 0;
}
