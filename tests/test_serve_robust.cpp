// Serving robustness (ISSUE 10): admission control & shedding, priorities,
// queue deadlines, cooperative cancellation of RUNNING jobs, execution
// budgets with a watchdog, transient-failure retry with backoff, and
// graceful drain vs immediate shutdown.  The load-bearing contracts:
//
//  * a full queue sheds deterministically (RejectNew / EvictLowestPriority)
//    and FIFO order holds within a priority class;
//  * cancel() of a running Trajectory returns within one cancellation-
//    check interval (generous wall-clock bound pinned below);
//  * a job wedged in a stuck syscall (simmpi delay fault) is finalized
//    TimedOut by the watchdog while the service keeps serving;
//  * transient failures (comm timeout, numerical-health abort) retry and
//    can succeed on attempt 2 with results bit-identical to a clean run;
//  * unrelated faults never perturb other jobs' numbers (bit-identity to
//    an isolated engine), and shutdown(Drain)/shutdown(Now) never deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pair_deepmd.hpp"
#include "md/sim.hpp"
#include "md/thermostat.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "simmpi/simmpi.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

dp::ModelConfig small_config(int ntypes = 2) {
  dp::ModelConfig cfg;
  cfg.ntypes = ntypes;
  cfg.descriptor.rcut = 4.5;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel.assign(static_cast<std::size_t>(ntypes), 48);
  cfg.descriptor.emb_widths = {8, 16, 32};
  cfg.descriptor.axis_neurons = 4;
  return cfg;
}

std::shared_ptr<const dp::DPModel> small_model(int ntypes = 2,
                                               uint64_t seed = 7) {
  auto model = std::make_shared<dp::DPModel>(small_config(ntypes));
  Rng rng(seed);
  model->init_random(rng);
  return model;
}

void random_system(int n, double box_len, int ntypes, uint64_t seed,
                   serve::JobSpec& spec) {
  spec.box = md::Box::cubic(box_len);
  Rng rng(seed);
  spec.x.clear();
  spec.type.clear();
  int placed = 0;
  int attempts = 0;
  while (placed < n) {
    DPMD_REQUIRE(++attempts < 100000, "cannot place atoms");
    const Vec3 p{rng.uniform(0.0, box_len), rng.uniform(0.0, box_len),
                 rng.uniform(0.0, box_len)};
    bool ok = true;
    for (const Vec3& q : spec.x) {
      if (spec.box.minimum_image(p, q).norm() < 1.8) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    spec.x.push_back(p);
    spec.type.push_back(
        static_cast<int>(rng.uniform_int(static_cast<uint64_t>(ntypes))));
    ++placed;
  }
}

serve::JobSpec score_spec(const std::string& model, int n, uint64_t seed) {
  serve::JobSpec spec;
  spec.kind = serve::JobKind::Score;
  spec.model = model;
  random_system(n, 11.0, 2, seed, spec);
  return spec;
}

serve::JobSpec traj_spec(const std::string& model, int n, uint64_t seed,
                         int steps) {
  serve::JobSpec spec;
  spec.kind = serve::JobKind::Trajectory;
  spec.model = model;
  random_system(n, 11.0, 2, seed, spec);
  spec.masses = {30.0, 20.0};
  spec.steps = steps;
  spec.dt_fs = 0.25;
  spec.temperature = 80.0;
  spec.langevin_gamma = 0.02;
  spec.seed = seed * 13 + 1;
  return spec;
}

bool bit_equal(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Vec3)) == 0;
}

/// Isolated reference for a Trajectory spec: a private Sim owning its own
/// PairDeepMD built straight from the model — no registry, no service.
serve::JobResult isolated_trajectory(
    const std::shared_ptr<const dp::DPModel>& model,
    const serve::JobSpec& spec) {
  md::Atoms atoms;
  for (std::size_t i = 0; i < spec.x.size(); ++i) {
    Vec3 p = spec.x[i];
    spec.box.wrap(p);
    const Vec3 vel = spec.v.empty() ? Vec3{} : spec.v[i];
    atoms.add_local(p, vel, spec.type[i], static_cast<std::int64_t>(i) + 1);
  }
  auto pair = std::make_shared<dp::PairDeepMD>(model, spec.opts);
  md::Sim sim(spec.box, std::move(atoms), spec.masses, std::move(pair),
              {.dt_fs = spec.dt_fs, .skin = -1.0});
  if (spec.temperature > 0.0)
    sim.set_thermostat(std::make_unique<md::LangevinThermostat>(
        spec.temperature, spec.langevin_gamma, spec.seed));
  sim.run(spec.steps);
  serve::JobResult res;
  const md::Atoms& a = sim.atoms();
  res.energy = sim.pe();
  res.x.assign(a.x.begin(), a.x.begin() + a.nlocal);
  res.v.assign(a.v.begin(), a.v.begin() + a.nlocal);
  res.forces.assign(a.f.begin(), a.f.begin() + a.nlocal);
  return res;
}

/// Fault hook that parks the worker until `release` flips (or the job's
/// stop token trips) — the deterministic way to hold a worker busy while a
/// test arranges the queue behind it.
serve::JobSpec blocker_spec(const std::string& model, uint64_t seed,
                            std::atomic<bool>& release) {
  serve::JobSpec spec = traj_spec(model, 12, seed, 1);
  spec.fault_hook = [&release](const rt::StopToken& tok) {
    while (!release.load(std::memory_order_acquire)) {
      if (tok.stop_requested()) return;  // don't wedge a shutdown
      std::this_thread::sleep_for(1ms);
    }
  };
  return spec;
}

void wait_until_running(serve::SimService& service, serve::JobId id) {
  while (service.status(id) != serve::JobStatus::Running) {
    std::this_thread::sleep_for(1ms);
  }
}

/// Fault hook that wedges the worker in real blocked time the token cannot
/// interrupt: a 2-rank simmpi exchange whose message is delayed by a
/// kDelay fault (the sleep happens on the sending rank's thread, and the
/// hook joins both ranks).  Total wall time ~= delay_s.
void simmpi_wedge(double delay_s) {
  simmpi::World w(2);
  w.set_fault_hook([delay_s](int, int, int, std::size_t) {
    simmpi::Fault f;
    f.kind = simmpi::Fault::Kind::kDelay;
    f.delay_s = delay_s;
    return f;
  });
  w.run([](simmpi::Rank& r) {
    if (r.rank() == 0) {
      const int x = 42;
      r.send(1, 7, &x, sizeof x);
    } else {
      (void)r.recv(0, 7);
    }
  });
}

// ---------------------------------------------------------------------------
// Status plumbing

TEST(ServeRobust, StatusAndCancelNamesAreExhaustive) {
  using serve::JobStatus;
  for (const JobStatus s :
       {JobStatus::Queued, JobStatus::Running, JobStatus::Done,
        JobStatus::Failed, JobStatus::Cancelled, JobStatus::Rejected,
        JobStatus::Expired, JobStatus::TimedOut}) {
    EXPECT_STRNE(serve::job_status_name(s), "?");
  }
  EXPECT_STREQ(serve::job_status_name(JobStatus::Rejected), "rejected");
  EXPECT_STREQ(serve::job_status_name(JobStatus::Expired), "expired");
  EXPECT_STREQ(serve::job_status_name(JobStatus::TimedOut), "timed-out");
  EXPECT_FALSE(serve::job_status_terminal(JobStatus::Queued));
  EXPECT_FALSE(serve::job_status_terminal(JobStatus::Running));
  for (const JobStatus s :
       {JobStatus::Done, JobStatus::Failed, JobStatus::Cancelled,
        JobStatus::Rejected, JobStatus::Expired, JobStatus::TimedOut}) {
    EXPECT_TRUE(serve::job_status_terminal(s));
  }
  using serve::CancelResult;
  for (const CancelResult r :
       {CancelResult::UnknownId, CancelResult::AlreadyFinished,
        CancelResult::Cancelled, CancelResult::StopRequested}) {
    EXPECT_STRNE(serve::cancel_result_name(r), "?");
  }
}

// ---------------------------------------------------------------------------
// Admission control

TEST(ServeRobust, SaturatedQueueRejectsNewAndKeepsFifo) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry,
                            {.workers = 1,
                             .queue_cap = 2,
                             .shed_policy = serve::ShedPolicy::RejectNew});

  std::atomic<bool> release{false};
  const serve::JobId blocker =
      service.submit(blocker_spec("m", 100, release));
  wait_until_running(service, blocker);

  const serve::JobId a = service.submit(score_spec("m", 12, 101));
  const serve::JobId b = service.submit(score_spec("m", 12, 102));
  EXPECT_TRUE(service.saturated());  // depth hit the cap

  const serve::JobId c = service.submit(score_spec("m", 12, 103));
  EXPECT_EQ(service.status(c), serve::JobStatus::Rejected);
  const serve::JobResult rc = service.wait(c);
  EXPECT_NE(rc.error.find("queue full"), std::string::npos) << rc.error;
  EXPECT_EQ(rc.attempts, 0);

  release.store(true, std::memory_order_release);
  const serve::JobResult ra = service.wait(a);
  const serve::JobResult rb = service.wait(b);
  ASSERT_EQ(ra.status, serve::JobStatus::Done) << ra.error;
  ASSERT_EQ(rb.status, serve::JobStatus::Done) << rb.error;
  EXPECT_LT(ra.seq, rb.seq);  // FIFO within the (single) priority class

  service.wait_all();
  EXPECT_FALSE(service.saturated());  // hysteresis: cleared once drained
  const auto s = service.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.evicted, 0u);
  EXPECT_EQ(s.queue_high_water, 2u);
  EXPECT_GE(s.saturations, 1u);
}

TEST(ServeRobust, EvictionShedsStrictlyLowerPriorityOnly) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(
      registry, {.workers = 1,
                 .queue_cap = 2,
                 .shed_policy = serve::ShedPolicy::EvictLowestPriority});

  std::atomic<bool> release{false};
  const serve::JobId blocker =
      service.submit(blocker_spec("m", 110, release));
  wait_until_running(service, blocker);

  serve::JobSpec lo1 = score_spec("m", 12, 111);
  serve::JobSpec lo2 = score_spec("m", 12, 112);
  const serve::JobId l1 = service.submit(std::move(lo1));
  const serve::JobId l2 = service.submit(std::move(lo2));

  // A higher-priority submission displaces the youngest lowest-priority job.
  serve::JobSpec hi = score_spec("m", 12, 113);
  hi.priority = 5;
  const serve::JobId h1 = service.submit(std::move(hi));
  EXPECT_EQ(service.status(l2), serve::JobStatus::Rejected);
  EXPECT_NE(service.wait(l2).error.find("evicted"), std::string::npos);
  EXPECT_EQ(service.status(l1), serve::JobStatus::Queued);

  // Same priority never displaces itself: the incoming job is rejected.
  serve::JobSpec hi2 = score_spec("m", 12, 114);
  hi2.priority = 5;
  serve::JobSpec hi3 = score_spec("m", 12, 115);
  hi3.priority = 5;
  const serve::JobId h2 = service.submit(std::move(hi2));  // evicts l1
  EXPECT_EQ(service.status(l1), serve::JobStatus::Rejected);
  const serve::JobId h3 = service.submit(std::move(hi3));  // no victim left
  EXPECT_EQ(service.status(h3), serve::JobStatus::Rejected);

  release.store(true, std::memory_order_release);
  EXPECT_EQ(service.wait(h1).status, serve::JobStatus::Done);
  EXPECT_EQ(service.wait(h2).status, serve::JobStatus::Done);
  const auto s = service.stats();
  EXPECT_EQ(s.evicted, 2u);
  EXPECT_EQ(s.rejected, 3u);  // evictions count as rejections too
}

TEST(ServeRobust, HigherPriorityRunsFirstFifoWithinClass) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  std::atomic<bool> release{false};
  const serve::JobId blocker =
      service.submit(blocker_spec("m", 120, release));
  wait_until_running(service, blocker);

  serve::JobSpec sa = score_spec("m", 12, 121);  // priority 0
  serve::JobSpec sb = score_spec("m", 12, 122);
  sb.priority = 5;
  serve::JobSpec sc = score_spec("m", 12, 123);  // priority 0
  serve::JobSpec sd = score_spec("m", 12, 124);
  sd.priority = 5;
  const serve::JobId a = service.submit(std::move(sa));
  const serve::JobId b = service.submit(std::move(sb));
  const serve::JobId c = service.submit(std::move(sc));
  const serve::JobId d = service.submit(std::move(sd));

  release.store(true, std::memory_order_release);
  service.wait_all();
  const serve::JobResult ra = service.wait(a);
  const serve::JobResult rb = service.wait(b);
  const serve::JobResult rc = service.wait(c);
  const serve::JobResult rd = service.wait(d);
  for (const auto* r : {&ra, &rb, &rc, &rd}) {
    ASSERT_EQ(r->status, serve::JobStatus::Done) << r->error;
  }
  // Completion order: the priority-5 class first (FIFO inside: b then d),
  // then the priority-0 class (a then c).
  EXPECT_LT(rb.seq, rd.seq);
  EXPECT_LT(rd.seq, ra.seq);
  EXPECT_LT(ra.seq, rc.seq);
}

// ---------------------------------------------------------------------------
// Deadlines and budgets

TEST(ServeRobust, QueuedJobPastDeadlineExpiresWithoutRunning) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  std::atomic<bool> release{false};
  const serve::JobId blocker =
      service.submit(blocker_spec("m", 130, release));
  wait_until_running(service, blocker);

  serve::JobSpec spec = score_spec("m", 12, 131);
  spec.deadline_ms = 60.0;
  const serve::JobId id = service.submit(std::move(spec));

  // The watchdog expires it while the only worker is still held.
  const serve::JobResult r = service.wait(id);
  EXPECT_EQ(r.status, serve::JobStatus::Expired);
  EXPECT_EQ(r.attempts, 0);  // never started
  EXPECT_EQ(service.status(blocker), serve::JobStatus::Running);

  release.store(true, std::memory_order_release);
  EXPECT_EQ(service.wait(blocker).status, serve::JobStatus::Done);
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(ServeRobust, CancelRunningTrajectoryStopsWithinCheckInterval) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  // Long enough that it cannot finish on its own within the test.
  const serve::JobId id = service.submit(traj_spec("m", 12, 140, 2000000));
  wait_until_running(service, id);

  const auto t0 = Clock::now();
  EXPECT_EQ(service.cancel(id), serve::CancelResult::StopRequested);
  const serve::JobResult r = service.wait(id);
  const auto elapsed = Clock::now() - t0;
  EXPECT_EQ(r.status, serve::JobStatus::Cancelled);
  EXPECT_NE(r.error.find("stopped"), std::string::npos) << r.error;
  // One cancellation-check interval is one MD step / DP block sweep —
  // micro- to milliseconds here.  10 s is a deliberately generous pin so
  // the bound only breaks if cancellation degrades to job granularity.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 10.0);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ServeRobust, ExecutionBudgetTimesOutCooperatively) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  serve::JobSpec spec = traj_spec("m", 12, 150, 2000000);
  spec.budget_ms = 150.0;
  const auto t0 = Clock::now();
  const serve::JobResult r = service.wait(service.submit(std::move(spec)));
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_EQ(r.status, serve::JobStatus::TimedOut);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_LT(secs, 10.0);  // ~0.15 s budget + one check interval
  EXPECT_EQ(service.stats().timed_out, 1u);
  service.wait_all();  // the worker must come back cleanly
}

TEST(ServeRobust, WatchdogTimesOutWedgedJobWhileServiceStaysLive) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 2});

  // The wedge blocks ~1.2 s in simmpi message delivery (a delay fault on
  // the sending rank) and never polls its token — only the watchdog can
  // unblock the waiter, and it must do so at the ~0.1 s budget, not at the
  // ~1.2 s syscall return.
  serve::JobSpec wedged = score_spec("m", 12, 160);
  wedged.budget_ms = 100.0;
  wedged.fault_hook = [](const rt::StopToken&) { simmpi_wedge(1.2); };

  const auto t0 = Clock::now();
  const serve::JobId wid = service.submit(std::move(wedged));
  const serve::JobResult rw = service.wait(wid);
  const double waited =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_EQ(rw.status, serve::JobStatus::TimedOut);
  EXPECT_NE(rw.error.find("budget"), std::string::npos) << rw.error;
  EXPECT_LT(waited, 1.0);  // returned well before the wedge resolved

  // The second worker keeps serving while the first is still wedged.
  const serve::JobResult rok = service.wait(service.submit(
      score_spec("m", 12, 161)));
  ASSERT_EQ(rok.status, serve::JobStatus::Done) << rok.error;

  // Drain waits for the wedged worker to actually come back — no leak of
  // a busy worker past shutdown.
  service.shutdown(serve::ShutdownMode::Drain);
  EXPECT_EQ(service.stats().timed_out, 1u);
}

// ---------------------------------------------------------------------------
// Retries

TEST(ServeRobust, TransientFailureRetriesAndSucceedsBitIdentically) {
  const auto model = small_model();
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", model);
  serve::SimService service(registry,
                            {.workers = 1, .retry_backoff_ms = 5.0});

  serve::JobSpec spec = traj_spec("m", 12, 170, 6);
  const serve::JobResult ref = isolated_trajectory(model, spec);

  auto failures = std::make_shared<std::atomic<int>>(1);
  spec.max_attempts = 3;
  spec.fault_hook = [failures](const rt::StopToken&) {
    if (failures->fetch_sub(1) > 0) {
      throw simmpi::TimeoutError("injected comm timeout");
    }
  };
  const serve::JobResult r = service.wait(service.submit(std::move(spec)));
  ASSERT_EQ(r.status, serve::JobStatus::Done) << r.error;
  EXPECT_EQ(r.attempts, 2);  // failed once, succeeded on the retry
  // The retry is a clean re-run: bit-identical to the isolated engine.
  EXPECT_TRUE(bit_equal(r.x, ref.x));
  EXPECT_TRUE(bit_equal(r.v, ref.v));
  EXPECT_TRUE(bit_equal(r.forces, ref.forces));
  const auto s = service.stats();
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.failed, 0u);
}

TEST(ServeRobust, PermanentFailureIsNotRetried) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry,
                            {.workers = 1, .retry_backoff_ms = 5.0});

  serve::JobSpec spec = traj_spec("m", 12, 180, 4);
  spec.max_attempts = 3;
  spec.fault_hook = [](const rt::StopToken&) {
    throw dpmd::Error("deliberate permanent failure");
  };
  const serve::JobResult r = service.wait(service.submit(std::move(spec)));
  EXPECT_EQ(r.status, serve::JobStatus::Failed);
  EXPECT_EQ(r.attempts, 1);  // attempts to spare, but not transient
  EXPECT_NE(r.error.find("deliberate"), std::string::npos) << r.error;
  EXPECT_EQ(service.stats().retries, 0u);
}

TEST(ServeRobust, TransientRetriesExhaustedSurfaceAsFailed) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry,
                            {.workers = 1, .retry_backoff_ms = 5.0});

  serve::JobSpec spec = traj_spec("m", 12, 190, 4);
  spec.max_attempts = 2;
  spec.fault_hook = [](const rt::StopToken&) {
    throw simmpi::TimeoutError("injected comm timeout");
  };
  const serve::JobResult r = service.wait(service.submit(std::move(spec)));
  EXPECT_EQ(r.status, serve::JobStatus::Failed);
  EXPECT_EQ(r.attempts, 2);
  const auto s = service.stats();
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.failed, 1u);
}

// ---------------------------------------------------------------------------
// Health-guard integration

TEST(ServeRobust, PoisonedTrajectoryRecoversThroughHealthGuard) {
  const auto model = small_model();
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", model);
  serve::SimService service(registry, {.workers = 1});

  serve::JobSpec spec = traj_spec("m", 12, 200, 8);
  const serve::JobResult ref = isolated_trajectory(model, spec);

  // Poison the state once, mid-run: teleport one atom of a same-type pair
  // to 0.02 A from the other.  The near-singular descriptor (s = 1/r) makes
  // the next force evaluation two orders of magnitude above anything the
  // clean trajectory produces, the per-job guard threshold below puts that
  // over the line, and the guard rewinds to the setup snapshot and replays
  // the undisturbed trajectory.  The threshold override is the honest way
  // to reach the guard here: with DP nets the default 1e4 eV/A is
  // unreachable from state poison (the embedding tanh saturates at small r
  // and zeroes the gradient instead of blowing it up), and a NaN coordinate
  // never reaches the scan at all (NaN distances fail every cutoff
  // comparison, silently dropping the atom from all neighborhoods).
  spec.health.max_force = 1.0;  // clean-run forces are ~1e-3 eV/A
  auto poisoned = std::make_shared<std::atomic<bool>>(false);
  spec.on_step = [poisoned](int step, md::Sim& sim) {
    if (step != 3 || poisoned->exchange(true)) return;
    md::Atoms& a = sim.atoms();
    for (int i = 0; i < a.nlocal; ++i) {
      for (int j = i + 1; j < a.nlocal; ++j) {
        if (a.type[static_cast<std::size_t>(i)] !=
            a.type[static_cast<std::size_t>(j)]) {
          continue;
        }
        a.x[static_cast<std::size_t>(i)] =
            a.x[static_cast<std::size_t>(j)] + Vec3{0.02, 0.0, 0.0};
        return;
      }
    }
  };
  const serve::JobResult r = service.wait(service.submit(std::move(spec)));
  ASSERT_EQ(r.status, serve::JobStatus::Done) << r.error;
  EXPECT_TRUE(poisoned->load());
  EXPECT_EQ(r.iters, 8);
  for (const Vec3& p : r.x) {
    EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y) &&
                std::isfinite(p.z));
  }
  // Rewind + replay from the step-0 snapshot lands back on the clean run at
  // the tolerance ISSUE 6 pins (the forced post-rewind rebuild may reorder
  // neighbor summation, so 1e-10 rather than bit equality).
  ASSERT_EQ(r.x.size(), ref.x.size());
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    EXPECT_LT((r.x[i] - ref.x[i]).norm(), 1e-10);
    EXPECT_LT((r.v[i] - ref.v[i]).norm(), 1e-10);
  }
}

// ---------------------------------------------------------------------------
// Shutdown

TEST(ServeRobust, ShutdownDrainRunsTheBacklog) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  std::atomic<bool> release{false};
  const serve::JobId blocker =
      service.submit(blocker_spec("m", 210, release));
  wait_until_running(service, blocker);
  const serve::JobId a = service.submit(score_spec("m", 12, 211));
  const serve::JobId b = service.submit(score_spec("m", 12, 212));

  release.store(true, std::memory_order_release);
  service.shutdown(serve::ShutdownMode::Drain);
  EXPECT_FALSE(service.accepting());
  EXPECT_EQ(service.wait(blocker).status, serve::JobStatus::Done);
  EXPECT_EQ(service.wait(a).status, serve::JobStatus::Done);
  EXPECT_EQ(service.wait(b).status, serve::JobStatus::Done);
  EXPECT_THROW(service.submit(score_spec("m", 12, 213)), dpmd::Error);
  // Idempotent; switching modes after the fact is a no-op.
  service.shutdown(serve::ShutdownMode::Now);
}

TEST(ServeRobust, ShutdownNowCancelsBacklogAndInterruptsRunning) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  // Running job: a long trajectory that only the stop token can end.
  const serve::JobId running = service.submit(traj_spec("m", 12, 220, 2000000));
  wait_until_running(service, running);
  const serve::JobId queued1 = service.submit(score_spec("m", 12, 221));
  const serve::JobId queued2 = service.submit(score_spec("m", 12, 222));

  const auto t0 = Clock::now();
  service.shutdown(serve::ShutdownMode::Now);
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_LT(secs, 10.0);  // one cancellation-check interval, not 2M steps

  EXPECT_EQ(service.wait(queued1).status, serve::JobStatus::Cancelled);
  EXPECT_EQ(service.wait(queued2).status, serve::JobStatus::Cancelled);
  EXPECT_EQ(service.wait(running).status, serve::JobStatus::Cancelled);
  EXPECT_THROW(service.submit(score_spec("m", 12, 223)), dpmd::Error);
  EXPECT_GE(service.stats().cancelled, 3u);
}

// ---------------------------------------------------------------------------
// Arena hygiene

TEST(ServeRobust, FailedJobResetsArenaHighWater) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1, .use_arena = true});

  // Establish the arena's steady-state high water with a real score job.
  const serve::JobId big1 = service.submit(score_spec("m", 40, 230));
  ASSERT_EQ(service.wait(big1).status, serve::JobStatus::Done);
  service.wait_all();
  const std::size_t high1 = service.stats().arena_high_water;
  EXPECT_GT(high1, 0u);

  // A failing job rides the same worker; the scope guard must reset the
  // arena on the exception path...
  serve::JobSpec bad = score_spec("m", 12, 231);
  bad.fault_hook = [](const rt::StopToken&) {
    throw dpmd::Error("injected failure");
  };
  EXPECT_EQ(service.wait(service.submit(std::move(bad))).status,
            serve::JobStatus::Failed);

  // ...so an identical follow-up job starts from a clean bump pointer and
  // the high water does not creep.
  const serve::JobId big2 = service.submit(score_spec("m", 40, 230));
  ASSERT_EQ(service.wait(big2).status, serve::JobStatus::Done);
  service.wait_all();
  EXPECT_EQ(service.stats().arena_high_water, high1);
}

// ---------------------------------------------------------------------------
// Acceptance: the service stays live end-to-end under mixed faults

TEST(ServeRobust, ServiceStaysLiveUnderMixedFaults) {
  const auto model = small_model();
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", model);
  serve::SimService service(registry,
                            {.workers = 2,
                             .queue_cap = 8,
                             .shed_policy = serve::ShedPolicy::RejectNew,
                             .retry_backoff_ms = 5.0});

  // Overload rung: hold both workers, fill the queue to the cap, overflow.
  std::atomic<bool> release{false};
  const serve::JobId b1 = service.submit(blocker_spec("m", 240, release));
  const serve::JobId b2 = service.submit(blocker_spec("m", 241, release));
  wait_until_running(service, b1);
  wait_until_running(service, b2);
  std::vector<serve::JobId> admitted;
  for (int i = 0; i < 8; ++i) {
    admitted.push_back(service.submit(score_spec("m", 12, 250 + i)));
  }
  std::vector<serve::JobId> shed;
  for (int i = 0; i < 3; ++i) {
    shed.push_back(service.submit(score_spec("m", 12, 260 + i)));
  }
  for (const serve::JobId id : shed) {
    EXPECT_EQ(service.status(id), serve::JobStatus::Rejected);
  }
  release.store(true, std::memory_order_release);
  for (const serve::JobId id : admitted) {
    EXPECT_EQ(service.wait(id).status, serve::JobStatus::Done);
  }

  // Fault rung: a wedged job, a flaky (retry-once) job and a clean job,
  // all in flight together.
  serve::JobSpec wedged = score_spec("m", 12, 270);
  wedged.budget_ms = 100.0;
  wedged.fault_hook = [](const rt::StopToken&) { simmpi_wedge(1.0); };
  serve::JobSpec flaky = traj_spec("m", 12, 271, 5);
  flaky.max_attempts = 2;
  auto failures = std::make_shared<std::atomic<int>>(1);
  flaky.fault_hook = [failures](const rt::StopToken&) {
    if (failures->fetch_sub(1) > 0) {
      throw simmpi::TimeoutError("injected comm timeout");
    }
  };
  serve::JobSpec clean = traj_spec("m", 12, 272, 6);
  const serve::JobResult ref = isolated_trajectory(model, clean);

  const serve::JobId wid = service.submit(std::move(wedged));
  const serve::JobId fid = service.submit(std::move(flaky));
  const serve::JobId cid = service.submit(std::move(clean));

  EXPECT_EQ(service.wait(wid).status, serve::JobStatus::TimedOut);
  const serve::JobResult rf = service.wait(fid);
  ASSERT_EQ(rf.status, serve::JobStatus::Done) << rf.error;
  EXPECT_EQ(rf.attempts, 2);
  const serve::JobResult rc = service.wait(cid);
  ASSERT_EQ(rc.status, serve::JobStatus::Done) << rc.error;
  // The faults around it never touched this job's numbers.
  EXPECT_TRUE(bit_equal(rc.x, ref.x));
  EXPECT_TRUE(bit_equal(rc.v, ref.v));
  EXPECT_TRUE(bit_equal(rc.forces, ref.forces));

  // Clean drain with the wedge possibly still resolving.
  service.shutdown(serve::ShutdownMode::Drain);
  const auto s = service.stats();
  EXPECT_EQ(s.rejected, 3u);
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_GE(s.retries, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.completed, 2u + 8u + 2u);  // blockers + admitted + flaky/clean
}

}  // namespace
}  // namespace dpmd
