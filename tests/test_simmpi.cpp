#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <utility>

#include "simmpi/simmpi.hpp"

namespace dpmd::simmpi {
namespace {

TEST(SimMpi, SendRecvDeliversPayload) {
  run_world(2, [](Rank& r) {
    if (r.rank() == 0) {
      const std::vector<int> data = {1, 2, 3, 4};
      r.send_vec(1, 7, data);
    } else {
      const auto got = r.recv_vec<int>(0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(SimMpi, FifoOrderPerChannel) {
  run_world(2, [](Rank& r) {
    if (r.rank() == 0) {
      for (int i = 0; i < 50; ++i) r.send_vec(1, 3, std::vector<int>{i});
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(r.recv_vec<int>(0, 3)[0], i);
      }
    }
  });
}

TEST(SimMpi, TagsAreIndependentChannels) {
  run_world(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_vec(1, 1, std::vector<int>{111});
      r.send_vec(1, 2, std::vector<int>{222});
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(r.recv_vec<int>(0, 2)[0], 222);
      EXPECT_EQ(r.recv_vec<int>(0, 1)[0], 111);
    }
  });
}

TEST(SimMpi, RingExchange) {
  const int n = 8;
  run_world(n, [n](Rank& r) {
    const int right = (r.rank() + 1) % n;
    const int left = (r.rank() + n - 1) % n;
    const auto got = r.sendrecv_vec<int>(right, left, 5,
                                         std::vector<int>{r.rank()});
    EXPECT_EQ(got[0], left);
  });
}

TEST(SimMpi, EmptyMessage) {
  run_world(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_vec(1, 9, std::vector<double>{});
    } else {
      EXPECT_TRUE(r.recv_vec<double>(0, 9).empty());
    }
  });
}

TEST(SimMpi, AllreduceSum) {
  run_world(5, [](Rank& r) {
    const double total = r.allreduce_sum(static_cast<double>(r.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 15.0);  // 1+2+3+4+5
  });
}

TEST(SimMpi, AllreduceVector) {
  run_world(4, [](Rank& r) {
    const std::vector<double> mine = {1.0, static_cast<double>(r.rank())};
    const auto total = r.allreduce_sum(mine);
    EXPECT_DOUBLE_EQ(total[0], 4.0);
    EXPECT_DOUBLE_EQ(total[1], 6.0);  // 0+1+2+3
  });
}

TEST(SimMpi, AllreduceMax) {
  run_world(6, [](Rank& r) {
    EXPECT_DOUBLE_EQ(r.allreduce_max(static_cast<double>(r.rank())), 5.0);
  });
}

TEST(SimMpi, AllgatherIndexedByRank) {
  run_world(4, [](Rank& r) {
    const auto all = r.allgather(r.rank() * 10);
    ASSERT_EQ(all.size(), 4u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 10);
  });
}

TEST(SimMpi, AllgathervVariableSizes) {
  run_world(3, [](Rank& r) {
    std::vector<int> mine(static_cast<std::size_t>(r.rank() + 1), r.rank());
    const auto all = r.allgatherv(mine);
    ASSERT_EQ(all.size(), 3u);
    for (int src = 0; src < 3; ++src) {
      EXPECT_EQ(all[static_cast<std::size_t>(src)].size(),
                static_cast<std::size_t>(src + 1));
      for (const int v : all[static_cast<std::size_t>(src)]) {
        EXPECT_EQ(v, src);
      }
    }
  });
}

TEST(SimMpi, RepeatedCollectivesStayConsistent) {
  run_world(4, [](Rank& r) {
    for (int it = 0; it < 20; ++it) {
      const double s = r.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, 4.0);
      r.barrier();
    }
  });
}

TEST(SimMpi, CountsTraffic) {
  World w(2);
  w.run([](Rank& r) {
    if (r.rank() == 0) r.send_vec(1, 0, std::vector<double>(10, 1.0));
    else r.recv_vec<double>(0, 0);
  });
  EXPECT_EQ(w.messages_sent(), 1u);
  EXPECT_EQ(w.bytes_sent(), 80u);
}

TEST(SimMpi, ExceptionPropagatesToCaller) {
  EXPECT_THROW(run_world(2,
                         [](Rank& r) {
                           if (r.rank() == 1) {
                             throw dpmd::Error("rank 1 exploded");
                           }
                         }),
               dpmd::Error);
}

TEST(SimMpi, FailedRankPoisonsBlockedReceivers) {
  // Rank 1 dies before sending; rank 0 is blocked in recv.  The poison
  // mechanism must wake rank 0 with an error instead of deadlocking.
  EXPECT_THROW(run_world(2,
                         [](Rank& r) {
                           if (r.rank() == 1) {
                             throw dpmd::Error("dying before send");
                           }
                           r.recv_vec<int>(1, 0);  // would block forever
                         }),
               dpmd::Error);
}

TEST(SimMpi, FailedRankReleasesBarrierWaiters) {
  EXPECT_THROW(run_world(3,
                         [](Rank& r) {
                           if (r.rank() == 2) {
                             throw dpmd::Error("dying before barrier");
                           }
                           r.barrier();
                         }),
               dpmd::Error);
}

// ------------------------------------------------- Request contract ----

TEST(SimMpi, RequestDoubleWaitThrows) {
  run_world(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_vec(1, 5, std::vector<int>{42});
    } else {
      Request rq = r.irecv(0, 5);
      EXPECT_EQ(rq.wait_vec<int>()[0], 42);
      EXPECT_FALSE(rq.valid());
      EXPECT_THROW(rq.wait(), dpmd::Error);
    }
  });
}

TEST(SimMpi, RequestDestructionWithoutWaitThrows) {
  run_world(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_vec(1, 5, std::vector<int>{42});
    } else {
      EXPECT_THROW(
          {
            Request rq = r.irecv(0, 5);
            // rq destroyed here without wait(): the posted receive would
            // leak its message in the mailbox.
          },
          dpmd::Error);
      r.recv_vec<int>(0, 5);  // drain so the world ends clean
    }
  });
}

TEST(SimMpi, RequestMoveTransfersTheClaim) {
  run_world(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_vec(1, 5, std::vector<int>{7});
    } else {
      Request a = r.irecv(0, 5);
      Request b = std::move(a);
      EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): the test
      EXPECT_TRUE(b.valid());
      EXPECT_EQ(b.wait_vec<int>()[0], 7);
    }
  });
}

// ---------------------------------------------- timeouts and faults ----

TEST(SimMpi, RecvTimeoutIsNamedError) {
  World w(2);
  w.set_recv_timeout(0.2);
  try {
    w.run([](Rank& r) {
      if (r.rank() == 1) r.recv_vec<int>(0, 3);  // rank 0 never sends
    });
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recv timeout"), std::string::npos) << what;
    EXPECT_NE(what.find("src 0"), std::string::npos) << what;
    EXPECT_NE(what.find("tag 3"), std::string::npos) << what;
  }
}

TEST(SimMpi, DroppedMessageBecomesTimeoutNotHang) {
  World w(2);
  w.set_recv_timeout(0.2);
  w.set_fault_hook([](int /*src*/, int /*dst*/, int tag, std::size_t) {
    Fault f;
    if (tag == 3) f.kind = Fault::Kind::kDrop;
    return f;
  });
  EXPECT_THROW(w.run([](Rank& r) {
                 if (r.rank() == 0) r.send_vec(1, 3, std::vector<int>{1});
                 else r.recv_vec<int>(0, 3);
               }),
               TimeoutError);
  EXPECT_EQ(w.faults_injected(), 1u);
}

TEST(SimMpi, CorruptFaultFlipsOneByte) {
  World w(2);
  w.set_fault_hook([](int, int, int tag, std::size_t) {
    Fault f;
    if (tag == 3) {
      f.kind = Fault::Kind::kCorrupt;
      f.corrupt_offset = 0;
    }
    return f;
  });
  w.run([](Rank& r) {
    if (r.rank() == 0) {
      r.send_vec(1, 3, std::vector<unsigned char>{0x0F});
    } else {
      EXPECT_EQ(r.recv_vec<unsigned char>(0, 3)[0], 0xF0);
    }
  });
  EXPECT_EQ(w.faults_injected(), 1u);
}

TEST(SimMpi, StalledSenderBecomesTimeout) {
  World w(2);
  w.set_recv_timeout(0.2);
  w.set_fault_hook([](int, int, int tag, std::size_t) {
    Fault f;
    if (tag == 3) {
      f.kind = Fault::Kind::kDelay;
      f.delay_s = 2.0;  // well past the receiver's deadline
    }
    return f;
  });
  EXPECT_THROW(w.run([](Rank& r) {
                 if (r.rank() == 0) r.send_vec(1, 3, std::vector<int>{1});
                 else r.recv_vec<int>(0, 3);
               }),
               TimeoutError);
}

// -------------------------------------------------------------- CartGrid ----

TEST(CartGrid, RankCoordRoundTrip) {
  CartGrid grid(4, 3, 2);
  EXPECT_EQ(grid.size(), 24);
  for (int r = 0; r < grid.size(); ++r) {
    const auto c = grid.coords_of(r);
    EXPECT_EQ(grid.rank_of(c[0], c[1], c[2]), r);
  }
}

TEST(CartGrid, PeriodicWrap) {
  CartGrid grid(4, 3, 2);
  EXPECT_EQ(grid.rank_of(-1, 0, 0), grid.rank_of(3, 0, 0));
  EXPECT_EQ(grid.rank_of(4, 0, 0), grid.rank_of(0, 0, 0));
  EXPECT_EQ(grid.rank_of(0, -1, 0), grid.rank_of(0, 2, 0));
  EXPECT_EQ(grid.rank_of(0, 0, 2), grid.rank_of(0, 0, 0));
}

TEST(CartGrid, NeighborOffsets) {
  CartGrid grid(3, 3, 3);
  const int center = grid.rank_of(1, 1, 1);
  EXPECT_EQ(grid.neighbor(center, 1, 0, 0), grid.rank_of(2, 1, 1));
  EXPECT_EQ(grid.neighbor(center, -1, -1, -1), grid.rank_of(0, 0, 0));
  EXPECT_EQ(grid.neighbor(center, 2, 0, 0), grid.rank_of(0, 1, 1));  // wraps
}

TEST(DimsCreate, FactorizesExactly) {
  for (const int n : {1, 2, 4, 8, 12, 96, 384, 768, 12000}) {
    const auto d = dims_create(n);
    EXPECT_EQ(d[0] * d[1] * d[2], n) << n;
  }
}

TEST(DimsCreate, PrefersCubicShapes) {
  const auto d = dims_create(64);
  EXPECT_EQ(d[0], 4);
  EXPECT_EQ(d[1], 4);
  EXPECT_EQ(d[2], 4);
  const auto e = dims_create(96);  // 6x4x4 is the most cubic factorization
  EXPECT_EQ(e[0] * e[1] * e[2], 96);
  EXPECT_LE(e[0], 8);
  EXPECT_GE(e[2], 2);
}

}  // namespace
}  // namespace dpmd::simmpi
