// Skin-cadence step state (ISSUE 4): DomainEngine with
// DomainConfig::{skin, rebuild_every, rebuild_on_drift} must produce, on
// every step of a trajectory — rebuild steps and position-only refresh
// steps alike — forces identical (to amplified round-off) to a fresh
// single-process evaluation at the same positions.  Covers the recorded
// halo-plan replay, the persistent neighbor lists/partition, PairDeepMD's
// persistent env-batch structure, drift-triggered mid-cadence rebuilds and
// migration landing on rebuild steps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "comm/domain_engine.hpp"
#include "core/pair_deepmd.hpp"
#include "md/ghosts.hpp"
#include "md/lattice.hpp"
#include "md/pair_lj.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

struct GlobalSystem {
  md::Box box;
  std::vector<Vec3> x;
  std::vector<Vec3> v;
  std::vector<int> type;
  std::vector<double> masses;
};

GlobalSystem make_lj_gas(int natoms, double box_len, double t_kelvin,
                         double mass, uint64_t seed) {
  GlobalSystem sys;
  sys.box = md::Box::cubic(box_len);
  sys.masses = {mass};
  Rng rng(seed);
  md::Atoms atoms;
  const double min_sep = 3.0;
  int placed = 0;
  while (placed < natoms) {
    const Vec3 p{rng.uniform(0.0, box_len), rng.uniform(0.0, box_len),
                 rng.uniform(0.0, box_len)};
    bool ok = true;
    for (int i = 0; i < placed && ok; ++i) {
      ok = sys.box.minimum_image(p, atoms.x[static_cast<std::size_t>(i)])
               .norm() >= min_sep;
    }
    if (!ok) continue;
    atoms.add_local(p, {0, 0, 0}, 0, placed++);
  }
  md::thermalize(atoms, sys.masses, t_kelvin, rng);
  sys.x = atoms.x;
  sys.v.assign(atoms.v.begin(), atoms.v.begin() + atoms.nlocal);
  sys.type.assign(atoms.type.begin(), atoms.type.begin() + atoms.nlocal);
  return sys;
}

std::shared_ptr<md::PairLJ> make_lj(double rc) {
  auto pair = std::make_shared<md::PairLJ>(1, rc);
  pair->set_pair(0, 0, 0.0104, 3.4);
  return pair;
}

std::shared_ptr<const dp::DPModel> small_dp_model() {
  dp::ModelConfig cfg;
  cfg.ntypes = 1;
  cfg.descriptor.rcut = 3.0;
  cfg.descriptor.rcut_smth = 1.0;
  cfg.descriptor.sel = {24};
  cfg.descriptor.emb_widths = {8, 16};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {24, 24};
  auto model = std::make_shared<dp::DPModel>(cfg);
  Rng rng(91);
  model->init_random(rng);
  return model;
}

/// Oracle: fresh single-process force evaluation at the given (tag-sorted)
/// global positions — new ghosts, new exact-cutoff lists, no caches, no
/// staged state.  Returns per-tag forces and the potential energy.
struct Reference {
  std::vector<Vec3> f;
  double pe = 0.0;
};

Reference reference_forces(
    const GlobalSystem& sys,
    const std::vector<comm::DomainEngine::GlobalAtom>& all,
    const std::function<std::shared_ptr<md::Pair>()>& mk) {
  md::Atoms atoms;
  for (const auto& a : all) {
    Vec3 p = a.x;
    sys.box.wrap(p);
    atoms.add_local(p, {0, 0, 0},
                    sys.type[static_cast<std::size_t>(a.tag)], a.tag);
  }
  auto pair = mk();
  md::build_periodic_ghosts(atoms, sys.box, pair->cutoff());
  md::NeighborList list({pair->cutoff(), 0.0, pair->needs_full_list()});
  list.build(atoms, sys.box);
  atoms.zero_forces();
  const md::ForceResult res = pair->compute(atoms, list);
  // Fold ghost-image forces onto the parents (Newton on).
  for (int g = 0; g < atoms.nghost; ++g) {
    atoms.f[static_cast<std::size_t>(
        atoms.ghost_parent[static_cast<std::size_t>(g)])] +=
        atoms.f[static_cast<std::size_t>(atoms.nlocal + g)];
  }
  Reference ref;
  ref.f.assign(atoms.f.begin(), atoms.f.begin() + atoms.nlocal);
  ref.pe = res.pe;
  return ref;
}

/// Steps the cadenced engine and, after every step, checks the gathered
/// forces against the fresh-evaluation oracle at the same positions.
/// Returns rank 0's rebuild count.
int run_and_check_every_step(
    const GlobalSystem& sys, const simmpi::CartGrid& grid,
    const std::function<std::shared_ptr<md::Pair>()>& mk,
    comm::DomainConfig cfg, int steps, double ftol) {
  int rebuilds = 0;
  std::mutex mu;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, mk(), cfg);
    engine.seed(sys.x, sys.v, sys.type);
    for (int s = 0; s < steps; ++s) {
      engine.step();
      const auto all = engine.gather_all();  // collective
      const double pe = engine.total_pe();   // collective
      if (rank.rank() != 0) continue;
      ASSERT_EQ(all.size(), sys.x.size()) << "step " << s;
      const Reference ref = reference_forces(sys, all, mk);
      EXPECT_NEAR(pe, ref.pe, 1e-9 * std::max(1.0, std::fabs(ref.pe)))
          << "step " << s;
      double fscale = 1e-3;  // rel-vs-abs floor for near-zero forces
      for (const Vec3& f : ref.f) fscale = std::max(fscale, f.norm());
      for (std::size_t i = 0; i < all.size(); ++i) {
        const Vec3 df =
            all[i].f - ref.f[static_cast<std::size_t>(all[i].tag)];
        EXPECT_LT(df.norm() / fscale, ftol)
            << "step " << s << " tag " << all[i].tag;
      }
    }
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      rebuilds = engine.rebuild_count();
    }
  });
  return rebuilds;
}

// ---------------------------------------------------------------------------
// LJ: cadence 6 + skin over a 2x2x1 grid, forces vs fresh oracle each step
// ---------------------------------------------------------------------------

TEST(Cadence, LjRefreshStepsMatchFreshEvaluation) {
  const GlobalSystem sys = make_lj_gas(140, 24.0, 60.0, 40.0, 19);
  const simmpi::CartGrid grid(2, 2, 1);
  const auto mk = [] { return make_lj(5.0); };
  // skin 0.9 keeps 2*(rcut+skin) <= 12 on the split dimensions.
  const int rebuilds = run_and_check_every_step(
      sys, grid, mk,
      {.dt_fs = 1.0, .skin = 0.9, .rebuild_every = 6}, 18, 1e-10);
  // Cold gas: the fixed cadence dominates (setup + ~1 per 6 steps); far
  // fewer rebuilds than steps is the point of the exercise.
  EXPECT_LT(rebuilds, 10);
  EXPECT_GE(rebuilds, 4);
}

TEST(Cadence, LjAllSchedulesAgreeUnderCadence) {
  // The three step schedules (legacy monolithic, staged sequential, staged
  // overlapped) must agree through the refresh path exactly as they do
  // through the rebuild path.
  const GlobalSystem sys = make_lj_gas(120, 24.0, 50.0, 40.0, 23);
  const simmpi::CartGrid grid(2, 1, 1);
  const auto mk = [] { return make_lj(5.0); };
  const int steps = 14;

  struct Run {
    std::vector<comm::DomainEngine::GlobalAtom> atoms;
  };
  const auto run_cfg = [&](comm::DomainConfig cfg) {
    Run out;
    std::mutex mu;
    simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
      comm::DomainEngine engine(rank, grid, sys.box, sys.masses, mk(), cfg);
      engine.seed(sys.x, sys.v, sys.type);
      engine.run(steps);
      const auto all = engine.gather_all();
      if (rank.rank() == 0) {
        std::lock_guard lock(mu);
        out.atoms = all;
      }
    });
    return out;
  };

  comm::DomainConfig base{.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 5};
  base.staged = false;
  const Run legacy = run_cfg(base);
  base.staged = true;
  base.overlap = false;
  const Run sequential = run_cfg(base);
  base.overlap = true;
  const Run overlapped = run_cfg(base);

  ASSERT_EQ(legacy.atoms.size(), sys.x.size());
  for (std::size_t i = 0; i < legacy.atoms.size(); ++i) {
    EXPECT_LT((sequential.atoms[i].x - legacy.atoms[i].x).norm(), 1e-9);
    EXPECT_LT((overlapped.atoms[i].x - legacy.atoms[i].x).norm(), 1e-9);
    EXPECT_LT((sequential.atoms[i].f - legacy.atoms[i].f).norm(), 1e-9);
    EXPECT_LT((overlapped.atoms[i].f - legacy.atoms[i].f).norm(), 1e-9);
  }
}

TEST(Cadence, CadenceFiftyTracksRebuildEveryStepTrajectory) {
  // The acceptance pairing: rebuild_every = 50 + skin vs the
  // rebuild-every-step engine, same trajectory within amplified round-off
  // over a short run.
  const GlobalSystem sys = make_lj_gas(120, 24.0, 40.0, 40.0, 29);
  const simmpi::CartGrid grid(2, 1, 1);
  const auto mk = [] { return make_lj(5.0); };
  const int steps = 25;

  std::vector<comm::DomainEngine::GlobalAtom> every_step, cadenced;
  std::mutex mu;
  const auto run_cfg = [&](comm::DomainConfig cfg,
                           std::vector<comm::DomainEngine::GlobalAtom>& out) {
    simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
      comm::DomainEngine engine(rank, grid, sys.box, sys.masses, mk(), cfg);
      engine.seed(sys.x, sys.v, sys.type);
      engine.run(steps);
      const auto all = engine.gather_all();
      if (rank.rank() == 0) {
        std::lock_guard lock(mu);
        out = all;
      }
    });
  };
  run_cfg({.dt_fs = 0.5, .skin = 0.0, .rebuild_every = 1}, every_step);
  run_cfg({.dt_fs = 0.5, .skin = 0.9, .rebuild_every = 50}, cadenced);

  ASSERT_EQ(every_step.size(), cadenced.size());
  for (std::size_t i = 0; i < every_step.size(); ++i) {
    ASSERT_EQ(every_step[i].tag, cadenced[i].tag);
    EXPECT_LT(sys.box.minimum_image(cadenced[i].x, every_step[i].x).norm(),
              1e-7)
        << "tag " << every_step[i].tag;
    EXPECT_LT((cadenced[i].v - every_step[i].v).norm(), 1e-8);
    EXPECT_LT((cadenced[i].f - every_step[i].f).norm(), 1e-7);
  }
}

// ---------------------------------------------------------------------------
// Drift + migration edge cases
// ---------------------------------------------------------------------------

TEST(Cadence, FastAtomTriggersMidCadenceRebuildAndStaysCorrect) {
  GlobalSystem sys = make_lj_gas(100, 22.0, 30.0, 40.0, 31);
  // One hot atom: crosses skin/2 (0.4 A) on nearly every step and several
  // sub-box faces over the run, so drift rebuilds (with migration landing
  // on them) fire mid-cadence.
  sys.v[0] = {0.5, 0.3, 0.1};
  const simmpi::CartGrid grid(2, 1, 1);
  const auto mk = [] { return make_lj(4.5); };
  const int rebuilds = run_and_check_every_step(
      sys, grid, mk,
      {.dt_fs = 1.0, .skin = 0.8, .rebuild_every = 50}, 16, 1e-10);
  // Far more rebuilds than the fixed cadence alone (setup + 1) would give.
  EXPECT_GT(rebuilds, 5);
}

TEST(Cadence, DriftCheckOffFollowsFixedCadenceOnly) {
  const GlobalSystem sys = make_lj_gas(90, 22.0, 30.0, 40.0, 41);
  const simmpi::CartGrid grid(2, 1, 1);
  const auto mk = [] { return make_lj(4.5); };
  std::mutex mu;
  int rebuilds = 0;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(
        rank, grid, sys.box, sys.masses, mk(),
        {.dt_fs = 0.5, .skin = 1.0, .rebuild_every = 6,
         .rebuild_on_drift = false});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(13);  // setup rebuild + rebuilds at steps 6 and 12
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      rebuilds = engine.rebuild_count();
    }
  });
  EXPECT_EQ(rebuilds, 3);
}

TEST(Cadence, AutoSkinPicksLargestAdmissibleAndStaysCorrect) {
  // DomainConfig::skin < 0 = auto (ISSUE 5 satellite): the engine resolves
  // the largest skin the decomposition slack rule admits, capped at the
  // paper's 2 A, identically on every rank — and the cadenced trajectory
  // stays pinned to the fresh-evaluation oracle.
  const GlobalSystem sys = make_lj_gas(140, 24.0, 60.0, 40.0, 47);
  const auto mk = [] { return make_lj(5.0); };
  {
    // 2x2x1 over a 24 A cube: split dims have slack 24 - 12 = 12, so the
    // admissible skin is 12/2 - 5 = 1.0 (under the 2 A cap).
    const simmpi::CartGrid grid(2, 2, 1);
    std::mutex mu;
    double resolved = -1.0;
    simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
      comm::DomainEngine engine(rank, grid, sys.box, sys.masses, mk(),
                                {.dt_fs = 1.0, .skin = -1.0});
      const double got = engine.config().skin;
      std::lock_guard lock(mu);
      if (resolved < 0.0) resolved = got;
      EXPECT_EQ(got, resolved);  // every rank agrees
    });
    EXPECT_NEAR(resolved, 1.0, 1e-12);
  }
  {
    // Single rank: slack is the full box length per dim (24/2 - 5 = 7),
    // so the 2 A production cap binds.
    const simmpi::CartGrid grid(1, 1, 1);
    simmpi::run_world(1, [&](simmpi::Rank& rank) {
      comm::DomainEngine engine(rank, grid, sys.box, sys.masses, mk(),
                                {.dt_fs = 1.0, .skin = -1.0});
      EXPECT_NEAR(engine.config().skin, 2.0, 1e-12);
    });
  }
  // Trajectory correctness under the auto skin, forces vs oracle each step.
  const simmpi::CartGrid grid(2, 2, 1);
  const int rebuilds = run_and_check_every_step(
      sys, grid, mk, {.dt_fs = 1.0, .skin = -1.0, .rebuild_every = 6}, 12,
      1e-10);
  EXPECT_LT(rebuilds, 8);
}

TEST(Cadence, MigrationConservesTagsUnderCadence) {
  // Hot gas on a long cadence with drift rebuilds: atoms hand off between
  // ranks only on rebuild steps and nothing is lost or duplicated.
  const GlobalSystem sys = make_lj_gas(80, 20.0, 500.0, 10.0, 43);
  const simmpi::CartGrid grid(2, 2, 1);
  const auto mk = [] { return make_lj(4.0); };
  std::mutex mu;
  std::vector<comm::DomainEngine::GlobalAtom> all;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, mk(),
                              {.dt_fs = 1.0, .skin = 1.0,
                               .rebuild_every = 10});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(30);
    const auto gathered = engine.gather_all();
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      all = gathered;
    }
  });
  ASSERT_EQ(all.size(), 80u);
  std::set<std::int64_t> tags;
  for (const auto& a : all) tags.insert(a.tag);
  EXPECT_EQ(tags.size(), 80u);
}

// ---------------------------------------------------------------------------
// Deep Potential: persistent env-batch structure through the full stack
// ---------------------------------------------------------------------------

TEST(Cadence, DpEnvReuseMatchesFreshEvaluationEachStep) {
  auto model = small_dp_model();
  GlobalSystem sys;
  md::Atoms atoms = md::make_fcc(4.2, 4, 3, 3, 0, sys.box);
  sys.masses = {30.0};
  Rng rng(53);
  md::thermalize(atoms, sys.masses, 120.0, rng);
  sys.x = atoms.x;
  sys.v.assign(atoms.v.begin(), atoms.v.begin() + atoms.nlocal);
  sys.type.assign(atoms.type.begin(), atoms.type.begin() + atoms.nlocal);

  const simmpi::CartGrid grid(2, 1, 1);
  const auto mk = [&] {
    return std::make_shared<dp::PairDeepMD>(model, dp::EvalOptions{});
  };
  // 2*(rcut + skin) = 7.6 <= 8.4 (the split dimension's slack).
  const int rebuilds = run_and_check_every_step(
      sys, grid, mk,
      {.dt_fs = 0.5, .skin = 0.8, .rebuild_every = 5}, 12, 1e-9);
  EXPECT_LT(rebuilds, 7);
}

TEST(Cadence, SimDpEnvReuseMatchesFreshEvaluationEachStep) {
  // Single-process engine, same contract: md::Sim's cadence now reuses the
  // packed env structure between rebuilds (on_lists_rebuilt), and every
  // step must still match a cache-free evaluation at the same positions.
  auto model = small_dp_model();
  md::Box box;
  md::Atoms atoms = md::make_fcc(4.2, 3, 3, 3, 0, box);
  Rng rng(57);
  md::thermalize(atoms, {30.0}, 120.0, rng);
  auto pair = std::make_shared<dp::PairDeepMD>(model, dp::EvalOptions{});
  md::Sim sim(box, std::move(atoms), {30.0}, pair,
              {.dt_fs = 0.5, .skin = 1.0, .rebuild_every = 4});
  for (int s = 0; s < 10; ++s) {
    sim.step();
    // Fresh oracle at the post-step positions.
    md::Atoms ref;
    for (int i = 0; i < sim.atoms().nlocal; ++i) {
      Vec3 p = sim.atoms().x[static_cast<std::size_t>(i)];
      box.wrap(p);
      ref.add_local(p, {0, 0, 0},
                    sim.atoms().type[static_cast<std::size_t>(i)],
                    sim.atoms().tag[static_cast<std::size_t>(i)]);
    }
    dp::PairDeepMD fresh(model, dp::EvalOptions{});
    md::build_periodic_ghosts(ref, box, fresh.cutoff());
    md::NeighborList list({fresh.cutoff(), 0.0, true});
    list.build(ref, box);
    ref.zero_forces();
    fresh.compute(ref, list);
    for (int g = 0; g < ref.nghost; ++g) {
      ref.f[static_cast<std::size_t>(
          ref.ghost_parent[static_cast<std::size_t>(g)])] +=
          ref.f[static_cast<std::size_t>(ref.nlocal + g)];
    }
    for (int i = 0; i < ref.nlocal; ++i) {
      const Vec3 df = sim.atoms().f[static_cast<std::size_t>(i)] -
                      ref.f[static_cast<std::size_t>(i)];
      EXPECT_LT(df.norm(), 1e-10) << "step " << s << " atom " << i;
    }
  }
  EXPECT_LT(sim.rebuild_count(), 7);
}

}  // namespace
}  // namespace dpmd
