#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/half.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"
#include "util/vtanh.hpp"
#include "util/xyz_io.hpp"

namespace dpmd {
namespace {

// ---------------------------------------------------------------- Vec3 ----

TEST(Vec3, ArithmeticOps) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(b / 2.0, Vec3(2, 2.5, 3));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(a.norm2(), 14.0);
  EXPECT_DOUBLE_EQ(a.norm(), std::sqrt(14.0));
}

TEST(Vec3, CrossIsOrthogonal) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Vec3 a{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 b{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 c = cross(a, b);
    EXPECT_NEAR(dot(a, c), 0.0, 1e-12);
    EXPECT_NEAR(dot(b, c), 0.0, 1e-12);
  }
}

TEST(Vec3, IndexAccessors) {
  Vec3 a{1, 2, 3};
  EXPECT_DOUBLE_EQ(a[0], 1);
  EXPECT_DOUBLE_EQ(a[1], 2);
  EXPECT_DOUBLE_EQ(a[2], 3);
  a[1] = 9;
  EXPECT_DOUBLE_EQ(a.y, 9);
}

TEST(Vec3, ComponentMinMax) {
  const Vec3 a{1, 5, 3};
  const Vec3 b{2, 4, 3};
  EXPECT_EQ(cmin(a, b), Vec3(1, 4, 3));
  EXPECT_EQ(cmax(a, b), Vec3(2, 5, 3));
}

// ---------------------------------------------------------------- Half ----

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(half_bits_to_float(float_to_half_bits(f)), f) << i;
  }
}

TEST(Half, RoundTripIsIdentityOnHalfValues) {
  // Every finite half value must survive half->float->half exactly.
  for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const float f = half_bits_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads may differ
    EXPECT_EQ(float_to_half_bits(f), h) << std::hex << bits;
  }
}

TEST(Half, KnownValues) {
  EXPECT_EQ(half_bits_to_float(0x3C00), 1.0f);
  EXPECT_EQ(half_bits_to_float(0xC000), -2.0f);
  EXPECT_EQ(half_bits_to_float(0x7BFF), 65504.0f);  // max finite
  EXPECT_EQ(half_bits_to_float(0x0400), 6.103515625e-05f);  // min normal
  EXPECT_EQ(half_bits_to_float(0x0001), 5.960464477539063e-08f);  // min sub
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(half_bits_to_float(float_to_half_bits(1.0e6f))));
  EXPECT_TRUE(std::isinf(half_bits_to_float(float_to_half_bits(-1.0e6f))));
  EXPECT_LT(half_bits_to_float(float_to_half_bits(-1.0e6f)), 0.0f);
  // 65520 rounds up to inf (midpoint, even), 65519 rounds down to 65504.
  EXPECT_TRUE(std::isinf(half_bits_to_float(float_to_half_bits(65520.0f))));
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(65519.0f)), 65504.0f);
}

TEST(Half, UnderflowAndSubnormals) {
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(1.0e-9f)), 0.0f);
  const float tiny = 3.0e-7f;  // subnormal half territory
  const float rt = half_bits_to_float(float_to_half_bits(tiny));
  EXPECT_NEAR(rt, tiny, 6.0e-8f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1+2^-10);
  // RNE picks the even mantissa: 1.0.
  EXPECT_EQ(half_bits_to_float(float_to_half_bits(1.0f + 0x1.0p-11f)), 1.0f);
  // 1 + 3*2^-11 is halfway to the odd side: rounds up to 1+2^-9... check
  // against the nearest representable: 1 + 2^-10 vs 1 + 2^-9; midpoint picks
  // even -> 1 + 2^-9 has even mantissa bit pattern? Verify monotonicity
  // instead: rounding must never move by more than half an ulp (2^-11).
  for (float f = 0.5f; f < 2.0f; f += 0.001f) {
    const float rt = half_bits_to_float(float_to_half_bits(f));
    EXPECT_NEAR(rt, f, 0x1.0p-11f) << f;
  }
}

TEST(Half, InfNanPropagation) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(half_bits_to_float(float_to_half_bits(inf))));
  EXPECT_TRUE(std::isnan(
      half_bits_to_float(float_to_half_bits(std::nanf("")))));
}

TEST(Half, RelativeErrorBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float f = static_cast<float>(rng.uniform(-100.0, 100.0));
    if (std::fabs(f) < 1e-3f) continue;
    const float rt = half_bits_to_float(float_to_half_bits(f));
    EXPECT_LE(std::fabs(rt - f) / std::fabs(f), 0x1.0p-11f + 1e-7f);
  }
}

TEST(Half, BulkConversions) {
  const std::vector<float> src = {0.0f, 1.5f, -3.25f, 100.0f};
  std::vector<Half> h(src.size());
  convert_to_half(src.data(), h.data(), src.size());
  std::vector<float> back(src.size());
  convert_to_float(h.data(), back.data(), h.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(back[i], src[i]);
}

// ----------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool all_same_c = true;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) all_same_c = false;
  }
  EXPECT_FALSE(all_same_c);
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(2);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaled) {
  Rng rng(6);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

// --------------------------------------------------------------- Stats ----

TEST(Stats, KnownValues) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // population variance
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_NEAR(s.sdmr_percent(), 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, SdmrOfConstantIsZero) {
  OnlineStats s;
  for (int i = 0; i < 10; ++i) s.add(3.5);
  EXPECT_DOUBLE_EQ(s.sdmr_percent(), 0.0);
}

TEST(Stats, StatsOfVector) {
  const auto s = stats_of(std::vector<int>{1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Histogram, BinningAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.5 + (i % 10));
  EXPECT_DOUBLE_EQ(h.total_in_range(), 100.0);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_DOUBLE_EQ(h.count(b), 10.0);
  const auto d = h.density();
  double integral = 0.0;
  for (const double v : d) integral += v * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, OutOfRangeDropped) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.5);
  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.total_in_range(), 1.0);
  EXPECT_DOUBLE_EQ(h.total_dropped(), 2.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

// --------------------------------------------------------------- Table ----

TEST(Table, RendersAllCells) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fix(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(fmt_pct(62.3, 1), "62.3%");
  EXPECT_EQ(fmt_int(-42), "-42");
}

TEST(Table, AsciiBarClamped) {
  EXPECT_EQ(ascii_bar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.0, 1.0, 10), "          ");
  EXPECT_EQ(ascii_bar(2.0, 1.0, 10), "##########");  // clamped
  EXPECT_EQ(ascii_bar(0.5, 1.0, 10).substr(0, 5), "#####");
}

// ----------------------------------------------------------------- CLI ----

TEST(Cli, ParsesAllForms) {
  // Note: a bare flag followed by a positional is inherently ambiguous
  // ("--flag pos" reads as flag=pos); bench/example CLIs therefore put
  // positionals first or use --key=value.
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "pos", "--flag"};
  Args args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--x=2.5"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
}

// ----------------------------------------------------------------- XYZ ----

TEST(XyzIo, RoundTrip) {
  XyzFrame frame;
  frame.types = {0, 1, 0};
  frame.positions = {{0, 0, 0}, {1.5, 2.5, 3.5}, {-1, 0, 2}};
  frame.box = {10, 10, 10};
  frame.comment = "step=5";
  const std::vector<std::string> names = {"Cu", "H"};

  std::stringstream ss;
  write_xyz(ss, frame, names);

  XyzFrame back;
  std::vector<std::string> names2 = names;
  ASSERT_TRUE(read_xyz(ss, back, names2));
  ASSERT_EQ(back.positions.size(), 3u);
  EXPECT_EQ(back.types, frame.types);
  EXPECT_DOUBLE_EQ(back.positions[1].y, 2.5);
  EXPECT_DOUBLE_EQ(back.box.x, 10.0);
  XyzFrame none;
  EXPECT_FALSE(read_xyz(ss, none, names2));
}

// --------------------------------------------------------------- vtanh ----

TEST(Vtanh, TracksStdTanhToRoundoff) {
  // The vectorized tanh replaces std::tanh in every DenseLayer forward; the
  // comparison tolerances downstream (test_nn 1e-12, test_tflike 1e-14
  // consistency) assume it stays within a few ulp absolute.
  std::vector<double> xs;
  for (double x = -25.0; x <= 25.0; x += 0.0137) xs.push_back(x);
  xs.push_back(0.0);
  xs.push_back(1e-12);
  xs.push_back(-3e-8);
  std::vector<double> ys = xs;
  vtanh(ys.data(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(ys[i], std::tanh(xs[i]), 5e-16) << "x=" << xs[i];
  }
}

TEST(Vtanh, FloatOverloadTracksStdTanh) {
  std::vector<float> xs;
  for (float x = -10.0f; x <= 10.0f; x += 0.0171f) xs.push_back(x);
  std::vector<float> ys = xs;
  vtanh(ys.data(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(ys[i], std::tanh(xs[i]), 2e-7f) << "x=" << xs[i];
  }
}

TEST(Vtanh, PropagatesNanAndSaturatesInfinity) {
  // A diverged trajectory (NaN coordinates) must stay visibly diverged:
  // NaN in, NaN out — not a silently finite +/-1.
  double vals[4] = {std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity(), 100.0};
  vtanh(vals, 4);
  EXPECT_TRUE(std::isnan(vals[0]));
  EXPECT_DOUBLE_EQ(vals[1], 1.0);
  EXPECT_DOUBLE_EQ(vals[2], -1.0);
  EXPECT_DOUBLE_EQ(vals[3], 1.0);
}

}  // namespace
}  // namespace dpmd
