#include <gtest/gtest.h>

#include <numeric>

#include "loadbalance/loadbalance.hpp"
#include "perfmodel/perfmodel.hpp"

namespace dpmd {
namespace {

using lb::balance_within_nodes;
using lb::decompose_uniform;
using lb::NodeBoxLayout;
using lb::pair_times;
using lb::spread_of;

TEST(LoadBalance, DecomposeConservesAtoms) {
  Rng rng(1);
  const auto counts = decompose_uniform(54000, {8, 6, 4}, rng);
  EXPECT_EQ(counts.size(), 8u * 6 * 4);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 54000);
}

TEST(LoadBalance, BalancePreservesNodeTotals) {
  Rng rng(2);
  const auto counts = decompose_uniform(10007, {4, 4, 4}, rng);
  const auto balanced = balance_within_nodes(counts, 4);
  ASSERT_EQ(balanced.size(), counts.size());
  for (std::size_t base = 0; base < counts.size(); base += 4) {
    int before = 0, after = 0;
    for (int r = 0; r < 4; ++r) {
      before += counts[base + static_cast<std::size_t>(r)];
      after += balanced[base + static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(before, after);
    // Within a node the balanced counts differ by at most 1.
    int lo = balanced[base], hi = balanced[base];
    for (int r = 1; r < 4; ++r) {
      lo = std::min(lo, balanced[base + static_cast<std::size_t>(r)]);
      hi = std::max(hi, balanced[base + static_cast<std::size_t>(r)]);
    }
    EXPECT_LE(hi - lo, 1);
  }
}

TEST(LoadBalance, SdmrDropsAfterBalancing) {
  // The Table III claim: natom SDMR drops by a large factor (paper: 79.93%
  // -> 24.32% at 1 atom/core, i.e. ~3x; 8x at 2 atoms/core).
  Rng rng(3);
  const std::array<int, 3> grid = {16, 12, 8};  // 1536 ranks = 384 nodes
  const auto counts = decompose_uniform(12 * 1536, grid, rng);  // 12/rank
  const auto balanced = balance_within_nodes(counts, 4);
  const auto s0 = spread_of(counts);
  const auto s1 = spread_of(balanced);
  EXPECT_NEAR(s0.avg, s1.avg, 1e-9);
  // Multinomial statistics give sqrt(rpn) ~ 2x; the paper's spatial
  // decomposition shows 3-8x (real density fluctuations are wider).
  EXPECT_GT(s0.sdmr_percent / s1.sdmr_percent, 1.8);
  EXPECT_LT(s1.max, s0.max);
}

TEST(LoadBalance, PairTimeTracksAtomCounts) {
  const std::vector<int> atoms = {10, 20, 30};
  lb::PairTimeModel model;
  model.jitter_frac = 0.0;
  const auto times = pair_times(atoms, model);
  EXPECT_NEAR(times[1] / times[0], 2.0, 1e-12);
  EXPECT_NEAR(times[2] / times[0], 3.0, 1e-12);
}

TEST(LoadBalance, MaxPairTimeImproves) {
  Rng rng(4);
  const auto counts = decompose_uniform(12 * 384, {8, 12, 4}, rng);
  const auto balanced = balance_within_nodes(counts, 4);
  lb::PairTimeModel model;
  const auto t0 = spread_of(pair_times(counts, model));
  const auto t1 = spread_of(pair_times(balanced, model));
  EXPECT_LT(t1.max, t0.max);
  EXPECT_LT(t1.sdmr_percent, t0.sdmr_percent);
}

TEST(NodeBoxLayout, OffsetsAndSplit) {
  // Fig. 5(b): locals of the 4 ranks first, then per-neighbor ghost groups.
  NodeBoxLayout layout({10, 12, 9, 11}, {5, 7, 3});
  EXPECT_EQ(layout.node_nlocal(), 42);
  EXPECT_EQ(layout.node_nghost(), 15);
  EXPECT_EQ(layout.ranks(), 4);
  EXPECT_EQ(layout.local_offset(0), 0);
  EXPECT_EQ(layout.local_offset(2), 22);
  EXPECT_EQ(layout.ghost_group_offset(0), 42);
  EXPECT_EQ(layout.ghost_group_offset(2), 54);

  const auto split = layout.even_split(4);
  ASSERT_EQ(split.size(), 5u);
  EXPECT_EQ(split.front(), 0);
  EXPECT_EQ(split.back(), 42);
  for (std::size_t p = 0; p + 1 < split.size() - 1; ++p) {
    const int a = split[p + 1] - split[p];
    const int b = split[p + 2] - split[p + 1];
    EXPECT_LE(std::abs(a - b), 1);
  }
}

TEST(NodeBoxLayout, EvenSplitAcross48Threads) {
  NodeBoxLayout layout({13, 11, 12, 10}, {});
  const auto split = layout.even_split(48);
  EXPECT_EQ(split.back(), 46);
  int busiest = 0;
  for (std::size_t p = 0; p + 1 < split.size(); ++p) {
    busiest = std::max(busiest, split[p + 1] - split[p]);
  }
  EXPECT_EQ(busiest, 1);  // 46 atoms over 48 threads
}

// ---------------------------------------------------------- rebalancer ----

// Property tests for the boundary-shift planner that DomainEngine drives
// (ISSUE 7).  The engine-level behavior (trajectory oracle, conservation,
// checkpointing) lives in test_rebalance.cpp; these pin the planner math.

lb::Planes uniform3(double lo, double hi, const std::array<int, 3>& n) {
  return {lb::uniform_planes(lo, hi, n[0]), lb::uniform_planes(lo, hi, n[1]),
          lb::uniform_planes(lo, hi, n[2])};
}

TEST(Rebalancer, IdempotentOnBalancedCost) {
  // Equal cost everywhere: every quantile target lands exactly on its old
  // plane, so the planner is a fixed point — no drift on balanced systems.
  const std::array<int, 3> grid = {4, 2, 1};
  const lb::Rebalancer reb(grid, {.damping = 1.0, .min_width = 2.0});
  const auto planes = uniform3(0.0, 40.0, grid);
  const std::vector<double> cost(8, 3.25);
  EXPECT_EQ(reb.plan(planes, cost), planes);
}

TEST(Rebalancer, MonotoneCostMonotoneShift) {
  // More cost on the low-x side pulls every x-plane down (shrinking the
  // overloaded slabs); a heavier high side pushes them up.  Other
  // dimensions are untouched when their slab sums stay equal.
  const std::array<int, 3> grid = {4, 1, 1};
  const lb::Rebalancer reb(grid, {.damping = 0.5, .min_width = 1.0});
  const auto planes = uniform3(0.0, 40.0, grid);
  const std::vector<double> heavy_low = {8.0, 4.0, 2.0, 1.0};
  const std::vector<double> heavy_high = {1.0, 2.0, 4.0, 8.0};
  const auto down = reb.plan(planes, heavy_low);
  const auto up = reb.plan(planes, heavy_high);
  for (int k = 1; k < 4; ++k) {
    EXPECT_LT(down[0][k], planes[0][k]) << "plane " << k;
    EXPECT_GT(up[0][k], planes[0][k]) << "plane " << k;
  }
  EXPECT_EQ(down[1], planes[1]);
  EXPECT_EQ(down[2], planes[2]);
}

TEST(Rebalancer, InvariantToCostScaling) {
  // Only relative cost matters: microseconds and hours plan the same grid.
  const std::array<int, 3> grid = {3, 2, 1};
  const lb::Rebalancer reb(grid, {.damping = 0.7, .min_width = 1.5});
  const auto planes = uniform3(0.0, 30.0, grid);
  std::vector<double> cost = {5.0, 1.0, 2.0, 9.0, 4.0, 3.0};
  const auto a = reb.plan(planes, cost);
  for (double& c : cost) c *= 3600.0 * 1e6;
  const auto b = reb.plan(planes, cost);
  for (int d = 0; d < 3; ++d) {
    ASSERT_EQ(a[d].size(), b[d].size());
    for (std::size_t k = 0; k < a[d].size(); ++k) {
      EXPECT_NEAR(a[d][k], b[d][k], 1e-12);
    }
  }
}

TEST(Rebalancer, MinWidthGuardUnderExtremeImbalance) {
  // All cost on one rank, damping 1, iterated: the greedy quantile target
  // wants a degenerate slab, the guard must keep every width >= min_width.
  const std::array<int, 3> grid = {4, 2, 2};
  const double min_w = 8.0;  // 2*(rcut+skin) in engine terms
  const lb::Rebalancer reb(grid, {.damping = 1.0, .min_width = min_w});
  auto planes = uniform3(0.0, 64.0, grid);
  std::vector<double> cost(16, 1e-6);
  cost[0] = 1e3;  // rank (0,0,0) dominates
  for (int iter = 0; iter < 50; ++iter) {
    planes = reb.plan(planes, cost);
    for (int d = 0; d < 3; ++d) {
      for (std::size_t k = 0; k + 1 < planes[d].size(); ++k) {
        ASSERT_GE(planes[d][k + 1] - planes[d][k], min_w - 1e-9)
            << "dim " << d << " slab " << k << " iter " << iter;
        ASSERT_LT(planes[d][k], planes[d][k + 1]);
      }
    }
  }
}

TEST(Rebalancer, PlaneStaysBetweenOldNeighbors) {
  // One balance event moves a plane by at most half the adjacent slab: no
  // atom's owner changes by more than one slab per event, which is what
  // keeps migration inside the 26-cell exchange shell.
  const std::array<int, 3> grid = {5, 1, 1};
  const lb::Rebalancer reb(grid, {.damping = 1.0, .min_width = 0.0});
  const auto planes = uniform3(0.0, 50.0, grid);
  const std::vector<double> cost = {100.0, 1e-9, 1e-9, 1e-9, 1e-9};
  const auto out = reb.plan(planes, cost);
  for (int k = 1; k < 5; ++k) {
    EXPECT_GT(out[0][k], planes[0][k - 1]);
    EXPECT_LT(out[0][k], planes[0][k + 1]);
  }
}

TEST(Rebalancer, DeterministicAcrossRanks) {
  // plan() is a pure function: every rank feeds it the same allgathered
  // cost vector and must derive the bit-identical decomposition.
  const std::array<int, 3> grid = {4, 3, 2};
  const lb::Rebalancer a(grid, {.damping = 0.6, .min_width = 2.5});
  const lb::Rebalancer b(grid, {.damping = 0.6, .min_width = 2.5});
  const auto planes = uniform3(-10.0, 50.0, grid);
  std::vector<double> cost(24);
  for (std::size_t r = 0; r < cost.size(); ++r) {
    cost[r] = 1.0 + 0.37 * static_cast<double>((r * 7919) % 13);
  }
  const auto pa = a.plan(planes, cost);
  const auto pb = b.plan(planes, cost);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(pa[d], pb[d]);  // bit-exact, not approximate
  }
}

TEST(Rebalancer, DampingZeroFreezesAndScalesTheMove) {
  const std::array<int, 3> grid = {2, 1, 1};
  const auto planes = uniform3(0.0, 20.0, grid);
  const std::vector<double> cost = {3.0, 1.0};
  const lb::Rebalancer frozen(grid, {.damping = 0.0, .min_width = 0.0});
  EXPECT_EQ(frozen.plan(planes, cost), planes);
  // The damped move is linear in damping until a guard rail clips it.
  const lb::Rebalancer half(grid, {.damping = 0.25, .min_width = 0.0});
  const lb::Rebalancer full(grid, {.damping = 0.5, .min_width = 0.0});
  const double d_half = half.plan(planes, cost)[0][1] - planes[0][1];
  const double d_full = full.plan(planes, cost)[0][1] - planes[0][1];
  EXPECT_NEAR(d_full, 2.0 * d_half, 1e-12);
  EXPECT_LT(d_full, 0.0);  // heavier low side pulls the plane down
}

TEST(Rebalancer, ZeroCostKeepsTheGrid) {
  // Nothing measured (e.g. the very first window): keep the grid rather
  // than dividing by zero or moving planes on noise.
  const std::array<int, 3> grid = {4, 4, 1};
  const lb::Rebalancer reb(grid, {.damping = 1.0, .min_width = 1.0});
  const auto planes = uniform3(0.0, 32.0, grid);
  EXPECT_EQ(reb.plan(planes, std::vector<double>(16, 0.0)), planes);
}

TEST(Rebalancer, SlabCostsSumRanksByGridLayout) {
  // cost is laid out like CartGrid::rank_of: (x*ny + y)*nz + z.
  const std::array<int, 3> grid = {2, 2, 2};
  const lb::Rebalancer reb(grid, {});
  std::vector<double> cost(8);
  for (std::size_t r = 0; r < 8; ++r) cost[r] = static_cast<double>(1 << r);
  const auto wx = reb.slab_costs(0, cost);
  ASSERT_EQ(wx.size(), 2u);
  EXPECT_DOUBLE_EQ(wx[0], 1 + 2 + 4 + 8);      // ranks 0..3 are x=0
  EXPECT_DOUBLE_EQ(wx[1], 16 + 32 + 64 + 128);  // ranks 4..7 are x=1
  const auto wz = reb.slab_costs(2, cost);
  EXPECT_DOUBLE_EQ(wz[0], 1 + 4 + 16 + 64);    // even ranks are z=0
  EXPECT_DOUBLE_EQ(wz[1], 2 + 8 + 32 + 128);
}

// --------------------------------------------------------------- perf ----

TEST(PerfModel, VariantLadderMonotone) {
  // Each Fig. 9 optimization must not slow the simulation down (copper,
  // strong-scaling node count).
  const auto sys = perf::copper_system();
  const perf::A64fxParams cpu;
  const tofu::MachineParams net;
  const std::array<int, 3> grid = {8, 12, 8};  // 768 nodes

  double last = 0.0;
  for (const auto v :
       {perf::Variant::BaselineTf, perf::Variant::RmtfFp64,
        perf::Variant::BlasFp32, perf::Variant::SveFp32,
        perf::Variant::SveFp16, perf::Variant::CommNolb,
        perf::Variant::CommLb}) {
    const auto cost = perf::predict_step(sys, grid, v, cpu, net);
    EXPECT_GT(cost.ns_per_day, last) << perf::variant_name(v);
    last = cost.ns_per_day;
  }
}

TEST(PerfModel, TfRemovalIsTheBigWin) {
  const auto sys = perf::copper_system();
  const perf::A64fxParams cpu;
  const tofu::MachineParams net;
  const std::array<int, 3> grid = {20, 30, 20};  // 12000 nodes: 1 atom/core
  const auto base =
      perf::predict_step(sys, grid, perf::Variant::BaselineTf, cpu, net);
  const auto rmtf =
      perf::predict_step(sys, grid, perf::Variant::RmtfFp64, cpu, net);
  // Paper: up to 5.2x from framework removal in the strong-scaling limit.
  EXPECT_GT(rmtf.ns_per_day / base.ns_per_day, 2.5);
  EXPECT_LT(rmtf.ns_per_day / base.ns_per_day, 12.0);
}

TEST(PerfModel, StrongScalingEfficiencyBand) {
  // Fig. 11: ns/day grows with node count; parallel efficiency at 12000
  // nodes lands near the paper's 62% (copper) with the busiest-core model.
  const auto sys = perf::copper_system();
  const perf::A64fxParams cpu;
  const tofu::MachineParams net;
  const std::array<std::array<int, 3>, 5> grids = {{{8, 12, 8},
                                                    {12, 15, 12},
                                                    {16, 18, 16},
                                                    {16, 24, 16},
                                                    {20, 30, 20}}};
  std::vector<double> nsday;
  for (const auto& g : grids) {
    nsday.push_back(
        perf::predict_step(sys, g, perf::Variant::CommLb, cpu, net).ns_per_day);
  }
  for (std::size_t i = 1; i < nsday.size(); ++i) {
    EXPECT_GT(nsday[i], nsday[i - 1]);
  }
  const double nodes0 = 768, nodes4 = 12000;
  const double efficiency =
      (nsday[4] / nsday[0]) / (nodes4 / nodes0);
  EXPECT_GT(efficiency, 0.30);
  EXPECT_LT(efficiency, 1.0);
}

TEST(PerfModel, CopperHits100PlusNsDay) {
  // The headline: >100 ns/day at 12000 nodes (paper: 149).
  const auto sys = perf::copper_system();
  const auto cost = perf::predict_step(sys, {20, 30, 20},
                                       perf::Variant::CommLb,
                                       perf::A64fxParams{},
                                       tofu::MachineParams{});
  EXPECT_GT(cost.ns_per_day, 100.0);
  EXPECT_LT(cost.ns_per_day, 300.0);
}

TEST(PerfModel, FlopCountsScaleWithSystem) {
  const auto cu = perf::copper_system();
  const auto h2o = perf::water_system();
  // Copper has ~5.7x the neighbors; its per-atom kernel flops must exceed
  // water's, but the shared fitting net keeps the ratio modest.
  EXPECT_GT(perf::dp_flops_per_atom(cu), perf::dp_flops_per_atom(h2o));
  EXPECT_LT(perf::dp_flops_per_atom(cu) / perf::dp_flops_per_atom(h2o), 4.0);
}

}  // namespace
}  // namespace dpmd
