// Checkpoint/restart (ISSUE 6): the framed container round-trips and
// rejects corruption; md::Sim restores bit-exactly (state-wise) and a
// restart resumed from a rebuild-boundary checkpoint reproduces the
// uninterrupted trajectory; comm::DomainEngine restarts per-rank on 2-4
// ranks; engine-kind and geometry mismatches are named errors.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/domain_engine.hpp"
#include "md/lattice.hpp"
#include "md/pair_lj.hpp"
#include "md/sim.hpp"
#include "md/thermostat.hpp"
#include "util/checkpoint.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

struct GlobalSystem {
  md::Box box;
  std::vector<Vec3> x;
  std::vector<Vec3> v;
  std::vector<int> type;
  std::vector<double> masses;
};

GlobalSystem make_lj_gas(int natoms, double box_len, double t_kelvin,
                         double mass, uint64_t seed) {
  GlobalSystem sys;
  sys.box = md::Box::cubic(box_len);
  sys.masses = {mass};
  Rng rng(seed);
  md::Atoms atoms;
  const double min_sep = 3.0;
  int placed = 0;
  while (placed < natoms) {
    const Vec3 p{rng.uniform(0.0, box_len), rng.uniform(0.0, box_len),
                 rng.uniform(0.0, box_len)};
    bool ok = true;
    for (int i = 0; i < placed && ok; ++i) {
      ok = sys.box.minimum_image(p, atoms.x[static_cast<std::size_t>(i)])
               .norm() >= min_sep;
    }
    if (!ok) continue;
    atoms.add_local(p, {0, 0, 0}, 0, placed++);
  }
  md::thermalize(atoms, sys.masses, t_kelvin, rng);
  sys.x = atoms.x;
  sys.v.assign(atoms.v.begin(), atoms.v.begin() + atoms.nlocal);
  sys.type.assign(atoms.type.begin(), atoms.type.begin() + atoms.nlocal);
  return sys;
}

std::shared_ptr<md::PairLJ> make_lj(double rc) {
  auto pair = std::make_shared<md::PairLJ>(1, rc);
  pair->set_pair(0, 0, 0.0104, 3.4);
  return pair;
}

md::Atoms atoms_of(const GlobalSystem& sys) {
  md::Atoms atoms;
  for (std::size_t i = 0; i < sys.x.size(); ++i) {
    atoms.add_local(sys.x[i], sys.v[i], sys.type[i],
                    static_cast<std::int64_t>(i));
  }
  return atoms;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// ------------------------------------------------- framed container ----

TEST(CheckpointContainer, RoundTripsScalarsAndVectors) {
  ckpt::Writer w;
  w.scalar(42);
  w.scalar(3.5);
  w.vec(std::vector<double>{1.0, 2.0, 3.0});
  w.vec(std::vector<std::int64_t>{});
  ckpt::Reader r(w.framed(), "unit test");
  EXPECT_EQ(r.scalar<int>(), 42);
  EXPECT_EQ(r.scalar<double>(), 3.5);
  EXPECT_EQ(r.vec<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(r.vec<std::int64_t>().empty());
  r.expect_end();
}

TEST(CheckpointContainer, FileRoundTrip) {
  const std::string path = temp_path("ckpt_file_roundtrip.ckpt");
  ckpt::Writer w;
  w.scalar(7);
  w.vec(std::vector<double>{4.0, 5.0});
  w.save_file(path);
  auto r = ckpt::Reader::from_file(path);
  EXPECT_EQ(r.scalar<int>(), 7);
  EXPECT_EQ(r.vec<double>(), (std::vector<double>{4.0, 5.0}));
  r.expect_end();
  std::remove(path.c_str());
}

TEST(CheckpointContainer, CorruptedFileIsRejectedByChecksum) {
  const std::string path = temp_path("ckpt_corrupt.ckpt");
  ckpt::Writer w;
  w.vec(std::vector<double>(16, 1.25));
  w.save_file(path);
  // Flip one payload byte, past the 32-byte header.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char b = 0;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(40);
    f.write(&b, 1);
  }
  try {
    auto r = ckpt::Reader::from_file(path);
    FAIL() << "corrupted checkpoint was accepted";
  } catch (const dpmd::Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointContainer, TruncatedFileIsRejected) {
  const std::string path = temp_path("ckpt_trunc.ckpt");
  ckpt::Writer w;
  w.vec(std::vector<double>(64, 2.0));
  const auto framed = w.framed();
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(framed.data()),
            static_cast<std::streamsize>(framed.size() / 2));
  }
  EXPECT_THROW(ckpt::Reader::from_file(path), dpmd::Error);
  std::remove(path.c_str());
}

TEST(CheckpointContainer, GarbageFileIsRejectedByMagic) {
  const std::string path = temp_path("ckpt_garbage.ckpt");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a checkpoint at all, but it is long enough to parse";
  }
  try {
    auto r = ckpt::Reader::from_file(path);
    FAIL() << "garbage accepted as a checkpoint";
  } catch (const dpmd::Error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------------ md::Sim ----

TEST(SimCheckpoint, RestoreIsBitExactAndResaveIsIdentical) {
  const GlobalSystem sys = make_lj_gas(80, 22.0, 50.0, 40.0, 101);
  const md::SimConfig cfg{.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 4};

  md::Sim a(sys.box, atoms_of(sys), sys.masses, make_lj(5.0), cfg);
  a.set_thermostat(std::make_unique<md::LangevinThermostat>(50.0, 0.05, 7));
  a.run(7);

  ckpt::Writer w;
  a.save_checkpoint(w);
  const auto framed = w.framed();

  md::Sim b(sys.box, atoms_of(sys), sys.masses, make_lj(5.0), cfg);
  b.set_thermostat(std::make_unique<md::LangevinThermostat>(50.0, 0.05, 7));
  ckpt::Reader r(framed, "round trip");
  b.restore_checkpoint(r);
  r.expect_end();

  EXPECT_EQ(b.steps_done(), a.steps_done());
  ASSERT_EQ(b.atoms().nlocal, a.atoms().nlocal);
  for (int i = 0; i < a.atoms().nlocal; ++i) {
    const auto k = static_cast<std::size_t>(i);
    EXPECT_EQ(b.atoms().x[k].x, a.atoms().x[k].x);
    EXPECT_EQ(b.atoms().x[k].y, a.atoms().x[k].y);
    EXPECT_EQ(b.atoms().x[k].z, a.atoms().x[k].z);
    EXPECT_EQ(b.atoms().v[k].x, a.atoms().v[k].x);
    EXPECT_EQ(b.atoms().v[k].y, a.atoms().v[k].y);
    EXPECT_EQ(b.atoms().v[k].z, a.atoms().v[k].z);
  }
  // Save -> restore -> save must reproduce the identical byte stream
  // (counters, RNG stream and thermostat accumulators included).
  ckpt::Writer w2;
  b.save_checkpoint(w2);
  EXPECT_EQ(w2.framed(), framed);
}

TEST(SimCheckpoint, RestartAtRebuildBoundaryMatchesUninterruptedRun) {
  // Checkpoint right after a rebuild step: the forced rebuild at restore
  // re-derives the identical lists and forces, so the resumed trajectory —
  // Langevin RNG stream included — is the uninterrupted one bit-for-bit
  // (compared here at 1e-12).
  const GlobalSystem sys = make_lj_gas(80, 22.0, 60.0, 40.0, 103);
  const md::SimConfig cfg{.dt_fs = 1.0, .skin = 1.2, .rebuild_every = 4};
  const auto mk_sim = [&] {
    auto s = std::make_unique<md::Sim>(sys.box, atoms_of(sys), sys.masses,
                                       make_lj(5.0), cfg);
    s->set_thermostat(std::make_unique<md::LangevinThermostat>(60.0, 0.05, 9));
    return s;
  };

  auto oracle = mk_sim();
  oracle->run(24);

  const std::string path = temp_path("sim_restart.ckpt");
  auto first = mk_sim();
  first->run(12);  // 12 = a multiple of rebuild_every: a cadence boundary
  first->save_checkpoint_file(path);

  auto resumed = mk_sim();
  resumed->restore_checkpoint_file(path);
  EXPECT_EQ(resumed->steps_done(), 12);
  resumed->run(12);

  ASSERT_EQ(resumed->atoms().nlocal, oracle->atoms().nlocal);
  for (int i = 0; i < oracle->atoms().nlocal; ++i) {
    const auto k = static_cast<std::size_t>(i);
    EXPECT_LT((resumed->atoms().x[k] - oracle->atoms().x[k]).norm(), 1e-12);
    EXPECT_LT((resumed->atoms().v[k] - oracle->atoms().v[k]).norm(), 1e-12);
  }
  std::remove(path.c_str());
}

TEST(SimCheckpoint, MidCadenceRestartStaysOnTrajectory) {
  // Checkpoint mid-window: the restart rebuilds one step early, so the
  // rebuild schedule shifts — the same legitimate perturbation the cadence
  // suite bounds at amplified round-off across schedules.
  const GlobalSystem sys = make_lj_gas(80, 22.0, 40.0, 40.0, 107);
  const md::SimConfig cfg{.dt_fs = 1.0, .skin = 1.2, .rebuild_every = 5};
  const auto mk_sim = [&] {
    return std::make_unique<md::Sim>(sys.box, atoms_of(sys), sys.masses,
                                     make_lj(5.0), cfg);
  };

  auto oracle = mk_sim();
  oracle->run(20);

  const std::string path = temp_path("sim_midcadence.ckpt");
  auto first = mk_sim();
  first->run(13);  // 13 % 5 != 0: mid-window
  first->save_checkpoint_file(path);

  auto resumed = mk_sim();
  resumed->restore_checkpoint_file(path);
  resumed->run(7);

  for (int i = 0; i < oracle->atoms().nlocal; ++i) {
    const auto k = static_cast<std::size_t>(i);
    // Wrapping happens at rebuilds, which now land on different steps:
    // compare through the minimum image.
    EXPECT_LT(sys.box
                  .minimum_image(resumed->atoms().x[k], oracle->atoms().x[k])
                  .norm(),
              1e-8);
  }
  std::remove(path.c_str());
}

TEST(SimCheckpoint, RejectsGeometryAndKindMismatch) {
  const GlobalSystem sys = make_lj_gas(40, 20.0, 40.0, 40.0, 109);
  md::Sim a(sys.box, atoms_of(sys), sys.masses, make_lj(5.0),
            {.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 4});
  a.run(3);
  ckpt::Writer w;
  a.save_checkpoint(w);
  const auto framed = w.framed();

  // Different rebuild cadence: restoring would silently change what the
  // serialized steps_since_build_ means, so it must be rejected.
  md::Sim b(sys.box, atoms_of(sys), sys.masses, make_lj(5.0),
            {.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 7});
  ckpt::Reader r(framed, "mismatch test");
  EXPECT_THROW(b.restore_checkpoint(r), dpmd::Error);

  // A Sim checkpoint restored into a DomainEngine: kind tag mismatch.
  simmpi::run_world(1, [&](simmpi::Rank& rank) {
    const simmpi::CartGrid grid(1, 1, 1);
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, make_lj(5.0),
                              {.dt_fs = 1.0, .skin = 1.0});
    ckpt::Reader rd(framed, "kind mismatch test");
    try {
      engine.restore_checkpoint(rd);
      FAIL() << "Sim checkpoint restored into a DomainEngine";
    } catch (const dpmd::Error& e) {
      EXPECT_NE(std::string(e.what()).find("kind"), std::string::npos)
          << e.what();
    }
  });
}

// ------------------------------------------------- comm::DomainEngine ----

TEST(DomainCheckpoint, PerRankRestartMatchesUninterruptedRun) {
  const GlobalSystem sys = make_lj_gas(140, 24.0, 60.0, 40.0, 113);
  const simmpi::CartGrid grid(2, 2, 1);
  const comm::DomainConfig cfg{.dt_fs = 1.0, .skin = 0.9, .rebuild_every = 5};
  const std::string base = temp_path("domain_restart.ckpt");

  // 50-step trajectory, interrupted at step 25 (a rebuild boundary, so the
  // restart's forced rebuild re-derives identical lists and forces).
  std::vector<comm::DomainEngine::GlobalAtom> oracle;
  std::mutex mu;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, make_lj(5.0),
                              cfg);
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(50);
    const auto all = engine.gather_all();
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      oracle = all;
    }
  });

  // First leg: run to the boundary (25 = 5 x rebuild_every) and checkpoint
  // every rank.
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, make_lj(5.0),
                              cfg);
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(25);
    engine.save_checkpoint_file(base);
  });

  // Second leg: fresh world, restore per rank, finish the trajectory.
  std::vector<comm::DomainEngine::GlobalAtom> resumed;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, make_lj(5.0),
                              cfg);
    engine.restore_checkpoint_file(base);
    EXPECT_EQ(engine.steps_done(), 25);
    engine.run(25);
    const auto all = engine.gather_all();
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      resumed = all;
    }
  });

  ASSERT_EQ(resumed.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(resumed[i].tag, oracle[i].tag);
    EXPECT_LT(sys.box.minimum_image(resumed[i].x, oracle[i].x).norm(), 1e-10);
    EXPECT_LT((resumed[i].v - oracle[i].v).norm(), 1e-10);
  }
  for (int r = 0; r < grid.size(); ++r) {
    std::remove(comm::DomainEngine::rank_checkpoint_path(base, r).c_str());
  }
}

TEST(DomainCheckpoint, RejectsWrongRankCountOrRank) {
  const GlobalSystem sys = make_lj_gas(60, 20.0, 40.0, 40.0, 127);
  const std::string base = temp_path("domain_wrongrank.ckpt");

  simmpi::run_world(2, [&](simmpi::Rank& rank) {
    const simmpi::CartGrid grid(2, 1, 1);
    // skin 0: a 2x1x1 split of this box has no slack for a ghost band.
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, make_lj(5.0),
                              {.dt_fs = 1.0, .skin = 0.0});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(2);
    engine.save_checkpoint_file(base);
  });

  // Restoring rank 1's file into rank 0 of a fresh world must be rejected.
  simmpi::run_world(1, [&](simmpi::Rank& rank) {
    const simmpi::CartGrid grid(1, 1, 1);
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, make_lj(5.0),
                              {.dt_fs = 1.0, .skin = 1.0});
    ckpt::Reader r = ckpt::Reader::from_file(
        comm::DomainEngine::rank_checkpoint_path(base, 1));
    EXPECT_THROW(engine.restore_checkpoint(r), dpmd::Error);
  });
  for (int r = 0; r < 2; ++r) {
    std::remove(comm::DomainEngine::rank_checkpoint_path(base, r).c_str());
  }
}

}  // namespace
}  // namespace dpmd
