#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "runtime/threadpool.hpp"

namespace dpmd::rt {
namespace {

TEST(Partition, CoversRangeExactly) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 1001u}) {
    for (unsigned parts : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (unsigned p = 0; p < parts; ++p) {
        const Range r = partition(n, parts, p);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.begin, r.end);
        covered += r.end - r.begin;
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(Partition, BalancedWithinOne) {
  const std::size_t n = 103;
  const unsigned parts = 8;
  std::size_t lo = n, hi = 0;
  for (unsigned p = 0; p < parts; ++p) {
    const Range r = partition(n, parts, p);
    lo = std::min(lo, r.end - r.begin);
    hi = std::max(hi, r.end - r.begin);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ThreadPool, RunOnAllReachesEveryThread) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::mutex mu;
  std::set<unsigned> seen;
  pool.run_on_all([&](unsigned tid) {
    std::lock_guard lock(mu);
    seen.insert(tid);
  });
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelRangesDisjointAndComplete) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(777);
  pool.parallel_ranges(touched.size(),
                       [&](std::size_t b, std::size_t e, unsigned) {
                         for (std::size_t i = b; i < e; ++i) {
                           touched[i].fetch_add(1);
                         }
                       });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelDynamicCoversEveryItemOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(501);  // not a multiple of 4
  pool.parallel_dynamic(touched.size(), [&](std::size_t i, unsigned tid) {
    EXPECT_LT(tid, pool.size());
    touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelDynamicDegenerateCases) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_dynamic(0, [&](std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);

  int single_calls = 0;
  pool.parallel_dynamic(1, [&](std::size_t i, unsigned tid) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(tid, 0u);  // n == 1 runs inline on the caller
    ++single_calls;
  });
  EXPECT_EQ(single_calls, 1);

  ThreadPool serial(1);
  std::vector<int> v(10, 0);
  serial.parallel_dynamic(v.size(),
                          [&](std::size_t i, unsigned) { v[i] = 1; });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 10);
}

TEST(ThreadPool, ManyConsecutiveRegions) {
  // The point of the persistent pool (paper §III-D2): repeated parallel
  // regions must be cheap and correct; run a few thousand back-to-back.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int iter = 0; iter < 2000; ++iter) {
    pool.run_on_all([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 2000L * 2);
}

TEST(ThreadPool, SingleThreadDegenerate) {
  ThreadPool pool(1);
  int calls = 0;
  pool.run_on_all([&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  std::vector<int> v(10, 0);
  pool.parallel_for(v.size(), [&](std::size_t i) { v[i] = 1; });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 10);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(3);
  bool called = false;
  pool.parallel_ranges(0, [&](std::size_t, std::size_t, unsigned) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

// --------------------------------- cooperative cancellation (ISSUE 10) ----

TEST(StopToken, DefaultTokenNeverStops) {
  StopToken t;
  EXPECT_FALSE(t.stop_possible());
  EXPECT_FALSE(t.stop_requested());
  EXPECT_EQ(t.why(), StopReason::None);
  EXPECT_NO_THROW(t.check("anywhere"));
}

TEST(StopToken, RequestStopTripsAndThrowsWithReason) {
  StopSource src;
  StopToken t = src.token();
  EXPECT_TRUE(t.stop_possible());
  EXPECT_FALSE(t.stop_requested());
  src.request_stop(StopReason::Cancelled);
  EXPECT_EQ(t.why(), StopReason::Cancelled);
  try {
    t.check("test site");
    FAIL() << "check() did not throw";
  } catch (const StopError& e) {
    EXPECT_EQ(e.reason(), StopReason::Cancelled);
    EXPECT_NE(std::string(e.what()).find("test site"), std::string::npos);
  }
}

TEST(StopToken, FirstReasonWinsOverLaterRequests) {
  StopSource src;
  src.request_stop(StopReason::DeadlineExceeded);
  src.request_stop(StopReason::Cancelled);  // too late: verdict is stable
  EXPECT_EQ(src.token().why(), StopReason::DeadlineExceeded);
}

TEST(StopToken, DeadlineTripsWithoutExplicitRequest) {
  StopSource src;
  src.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));  // already past
  EXPECT_EQ(src.token().why(), StopReason::DeadlineExceeded);
  src.set_deadline({});  // clearing disarms it
  EXPECT_FALSE(src.token().stop_requested());
  // An explicit request shadows a later deadline trip.
  src.request_stop(StopReason::Cancelled);
  src.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_EQ(src.token().why(), StopReason::Cancelled);
}

TEST(ThreadPool, StopTokenSkipsRemainingDynamicItemsSerial) {
  ThreadPool pool(1);  // serial parallel_dynamic path
  StopSource src;
  pool.set_stop_token(src.token());
  int ran = 0;
  pool.parallel_dynamic(100, [&](std::size_t i, unsigned) {
    if (i == 4) src.request_stop();
    ++ran;
  });
  // Items are checked before being claimed: 0..4 run, the rest are skipped.
  EXPECT_EQ(ran, 5);
  EXPECT_TRUE(pool.stop_token().stop_requested());
  // A default token restores the run-everything behaviour.
  pool.set_stop_token(StopToken());
  ran = 0;
  pool.parallel_dynamic(10, [&](std::size_t, unsigned) { ++ran; });
  EXPECT_EQ(ran, 10);
}

TEST(ThreadPool, StopTokenSkipsRemainingDynamicItemsPooled) {
  ThreadPool pool(4);
  StopSource src;
  pool.set_stop_token(src.token());
  const std::size_t n = 100000;
  std::atomic<std::size_t> ran{0};
  pool.parallel_dynamic(n, [&](std::size_t i, unsigned) {
    if (i == 0) src.request_stop();
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  // Already-claimed items finish; everything after the trip is skipped.
  EXPECT_LT(ran.load(), n / 2);
  EXPECT_GE(ran.load(), 1u);
}

TEST(ThreadPool, StopTokenDrainsAsyncJobEarly) {
  ThreadPool pool(2);
  StopSource src;
  pool.set_stop_token(src.token());
  const std::size_t n = 100000;
  std::atomic<std::size_t> ran{0};
  pool.submit_dynamic(n, [&](std::size_t i, unsigned) {
    if (i == 0) src.request_stop();
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  pool.wait_async();  // must return despite most items being skipped
  EXPECT_LT(ran.load(), n / 2);
}

}  // namespace
}  // namespace dpmd::rt
