#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "util/random.hpp"

namespace dpmd::nn {
namespace {

// ----------------------------------------------------------- DenseLayer ----

TEST(Dense, LinearLayerMatchesManual) {
  DenseLayer<double> layer(2, 3, Act::Linear, Resnet::None);
  // W = [[1,2,3],[4,5,6]], b = [0.1, 0.2, 0.3]
  layer.w.d = {1, 2, 3, 4, 5, 6};
  layer.b = {0.1, 0.2, 0.3};
  layer.finalize();

  const std::vector<double> x = {1.0, -1.0};
  std::vector<double> y(3), h(3);
  layer.forward(x.data(), y.data(), h.data(), 1, GemmKind::Ref);
  EXPECT_NEAR(y[0], 1 - 4 + 0.1, 1e-12);
  EXPECT_NEAR(y[1], 2 - 5 + 0.2, 1e-12);
  EXPECT_NEAR(y[2], 3 - 6 + 0.3, 1e-12);
}

TEST(Dense, TanhApplied) {
  DenseLayer<double> layer(1, 1, Act::Tanh, Resnet::None);
  layer.w.d = {2.0};
  layer.b = {0.5};
  layer.finalize();
  const double x = 0.3;
  double y, h;
  layer.forward(&x, &y, &h, 1, GemmKind::Ref);
  EXPECT_NEAR(y, std::tanh(2.0 * 0.3 + 0.5), 1e-12);
}

TEST(Dense, IdentityResnetAddsInput) {
  DenseLayer<double> layer(2, 2, Act::Tanh, Resnet::Identity);
  Rng rng(1);
  for (auto& v : layer.w.d) v = rng.uniform(-1, 1);
  layer.finalize();
  const std::vector<double> x = {0.4, -0.7};
  std::vector<double> y(2), h(2);
  layer.forward(x.data(), y.data(), h.data(), 1, GemmKind::Ref);
  EXPECT_NEAR(y[0], h[0] + x[0], 1e-12);
  EXPECT_NEAR(y[1], h[1] + x[1], 1e-12);
}

TEST(Dense, DoubledResnetConcatsInput) {
  DenseLayer<double> layer(2, 4, Act::Tanh, Resnet::Doubled);
  Rng rng(2);
  for (auto& v : layer.w.d) v = rng.uniform(-1, 1);
  layer.finalize();
  const std::vector<double> x = {0.4, -0.7};
  std::vector<double> y(4), h(4);
  layer.forward(x.data(), y.data(), h.data(), 1, GemmKind::Ref);
  EXPECT_NEAR(y[0], h[0] + x[0], 1e-12);
  EXPECT_NEAR(y[1], h[1] + x[1], 1e-12);
  EXPECT_NEAR(y[2], h[2] + x[0], 1e-12);
  EXPECT_NEAR(y[3], h[3] + x[1], 1e-12);
}

TEST(Dense, ResnetShapeValidation) {
  EXPECT_THROW(DenseLayer<double>(2, 3, Act::Tanh, Resnet::Identity),
               dpmd::Error);
  EXPECT_THROW(DenseLayer<double>(2, 5, Act::Tanh, Resnet::Doubled),
               dpmd::Error);
}

// ------------------------------------------------------ gradient checks ----

/// Central-difference gradient of a scalar function of the network input.
class MlpGradCheck : public ::testing::TestWithParam<GemmKind> {};

TEST_P(MlpGradCheck, InputGradientMatchesFiniteDifference) {
  const GemmKind kind = GetParam();
  Rng rng(42);
  Mlp<double> net = Mlp<double>::stack(4, {8, 16, 16}, 1);
  net.init_random(rng);

  const int batch = 3;
  std::vector<double> x(4 * batch);
  for (auto& v : x) v = rng.uniform(-0.5, 0.5);

  MlpCache<double> cache;
  std::vector<double> y(batch);
  net.forward(x.data(), y.data(), batch, cache, kind);

  // L = sum(y)  =>  dL/dy = 1.
  std::vector<double> dy(batch, 1.0);
  std::vector<double> dx(x.size());
  net.backward_input(dy.data(), dx.data(), batch, cache, kind);

  const double h = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x;
    auto xm = x;
    xp[i] += h;
    xm[i] -= h;
    std::vector<double> yp(batch), ym(batch);
    net.forward(xp.data(), yp.data(), batch, cache, kind);
    double lp = 0, lm = 0;
    for (int b = 0; b < batch; ++b) lp += yp[b];
    net.forward(xm.data(), ym.data(), batch, cache, kind);
    for (int b = 0; b < batch; ++b) lm += ym[b];
    const double fd = (lp - lm) / (2 * h);
    EXPECT_NEAR(dx[i], fd, 1e-6) << "input " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, MlpGradCheck,
                         ::testing::Values(GemmKind::Ref, GemmKind::Blocked,
                                           GemmKind::Sve, GemmKind::Auto));

TEST(Mlp, ParamGradientMatchesFiniteDifference) {
  Rng rng(7);
  Mlp<double> net = Mlp<double>::stack(3, {6, 6}, 1);
  net.init_random(rng);

  const int batch = 2;
  std::vector<double> x(3 * batch);
  for (auto& v : x) v = rng.uniform(-0.5, 0.5);

  MlpCache<double> cache;
  std::vector<double> y(batch);
  MlpGrads<double> grads = net.make_grads();
  grads.zero();
  net.forward(x.data(), y.data(), batch, cache, GemmKind::Ref);
  std::vector<double> dy(batch, 1.0);
  net.backward_full(dy.data(), nullptr, batch, cache, grads, GemmKind::Ref);

  // Flatten analytic grads in pack order (w then b per layer).
  std::vector<double> flat_grad;
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    flat_grad.insert(flat_grad.end(), grads.dw[l].d.begin(),
                     grads.dw[l].d.end());
    flat_grad.insert(flat_grad.end(), grads.db[l].begin(), grads.db[l].end());
  }

  auto params = net.pack_params();
  const double h = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 7) {  // sample every 7th
    auto pp = params;
    auto pm = params;
    pp[i] += h;
    pm[i] -= h;
    net.unpack_params(pp);
    std::vector<double> yp(batch);
    net.forward(x.data(), yp.data(), batch, cache, GemmKind::Ref);
    net.unpack_params(pm);
    std::vector<double> ym(batch);
    net.forward(x.data(), ym.data(), batch, cache, GemmKind::Ref);
    double lp = 0, lm = 0;
    for (int b = 0; b < batch; ++b) {
      lp += yp[b];
      lm += ym[b];
    }
    const double fd = (lp - lm) / (2 * h);
    EXPECT_NEAR(flat_grad[i], fd, 1e-5) << "param " << i;
    net.unpack_params(params);
  }
}

// ----------------------------------------------------------------- Mlp ----

TEST(Mlp, StackBuildsDeepMdShapes) {
  // Embedding-net shape: 1 -> 25 -> 50 -> 100 with a Doubled skip at each
  // widening step.
  const Mlp<double> emb = Mlp<double>::stack(1, {25, 50, 100}, 0);
  ASSERT_EQ(emb.layers().size(), 3u);
  EXPECT_EQ(emb.layers()[0].resnet, Resnet::None);  // 1 -> 25 is irregular
  EXPECT_EQ(emb.layers()[1].resnet, Resnet::Doubled);
  EXPECT_EQ(emb.layers()[2].resnet, Resnet::Doubled);

  // Fitting-net shape: D -> 240 -> 240 -> 240 -> 1 with Identity skips.
  const Mlp<double> fit = Mlp<double>::stack(1600, {240, 240, 240}, 1);
  ASSERT_EQ(fit.layers().size(), 4u);
  EXPECT_EQ(fit.layers()[1].resnet, Resnet::Identity);
  EXPECT_EQ(fit.layers()[2].resnet, Resnet::Identity);
  EXPECT_EQ(fit.layers()[3].act, Act::Linear);
  EXPECT_EQ(fit.output_dim(), 1);
}

TEST(Mlp, PackUnpackRoundTrip) {
  Rng rng(9);
  Mlp<double> net = Mlp<double>::stack(2, {4, 4}, 1);
  net.init_random(rng);
  const auto params = net.pack_params();
  EXPECT_EQ(params.size(), net.param_count());

  const std::vector<double> x = {0.1, 0.2};
  MlpCache<double> cache;
  double y0;
  net.forward(x.data(), &y0, 1, cache, GemmKind::Ref);

  auto perturbed = params;
  for (auto& p : perturbed) p += 1.0;
  net.unpack_params(perturbed);
  double y1;
  net.forward(x.data(), &y1, 1, cache, GemmKind::Ref);
  EXPECT_NE(y0, y1);

  net.unpack_params(params);
  double y2;
  net.forward(x.data(), &y2, 1, cache, GemmKind::Ref);
  EXPECT_DOUBLE_EQ(y0, y2);
}

TEST(Mlp, CastToFloatTracksDouble) {
  Rng rng(11);
  Mlp<double> net = Mlp<double>::stack(3, {16, 16}, 1);
  net.init_random(rng);
  Mlp<float> netf = net.cast<float>();

  const std::vector<double> x = {0.3, -0.2, 0.8};
  const std::vector<float> xf = {0.3f, -0.2f, 0.8f};
  MlpCache<double> cache;
  MlpCache<float> cachef;
  double y;
  float yf;
  net.forward(x.data(), &y, 1, cache, GemmKind::Ref);
  netf.forward(xf.data(), &yf, 1, cachef, GemmKind::Ref);
  EXPECT_NEAR(y, static_cast<double>(yf), 1e-5);
}

TEST(Mlp, HalfWeightsForwardClose) {
  Rng rng(13);
  Mlp<double> net = Mlp<double>::stack(8, {32, 32}, 1);
  net.init_random(rng);
  Mlp<float> netf = net.cast<float>();

  std::vector<float> x(8);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  MlpCache<float> c1, c2;
  float y32, y16;
  netf.forward(x.data(), &y32, 1, c1, GemmKind::Auto);
  netf.forward(x.data(), &y16, 1, c2, GemmKind::HalfWeights);
  EXPECT_NE(y32, 0.0f);
  EXPECT_NEAR(y16, y32, 5e-2f);  // fp16 storage error, bounded
}

TEST(Mlp, BatchMatchesPerSample) {
  Rng rng(17);
  Mlp<double> net = Mlp<double>::stack(4, {8, 8}, 2);
  net.init_random(rng);
  const int batch = 5;
  std::vector<double> x(4 * batch);
  for (auto& v : x) v = rng.uniform(-1, 1);

  MlpCache<double> cache;
  std::vector<double> y_batch(2 * batch);
  net.forward(x.data(), y_batch.data(), batch, cache, GemmKind::Auto);

  for (int b = 0; b < batch; ++b) {
    MlpCache<double> c2;
    std::vector<double> y(2);
    net.forward(x.data() + 4 * b, y.data(), 1, c2, GemmKind::Auto);
    EXPECT_NEAR(y[0], y_batch[2 * b], 1e-12);
    EXPECT_NEAR(y[1], y_batch[2 * b + 1], 1e-12);
  }
}

TEST(Mlp, SweepBitwiseMatchesPerItemBatch) {
  // forward_sweep/backward_sweep promise bitwise identity against per-item
  // forward_batch/backward_input_batch — fitting-net shape (identity
  // resnets, linear head), item sizes straddling the sve threshold and the
  // register-tile remainders.
  Rng rng(23);
  Mlp<double> net = Mlp<double>::stack(40, {48, 48, 48}, 1);
  net.init_random(rng);
  net.finalize();
  const std::vector<int> ms = {5, 1, 9, 3, 16};
  const int fin = net.input_dim();

  for (const bool packed : {true, false}) {
    // Reference: independent per-item round trips.
    std::vector<MlpCache<double>> ref_caches(ms.size());
    std::vector<std::vector<double>> x(ms.size()), dy(ms.size());
    std::vector<std::vector<double>> y_ref(ms.size()), dx_ref(ms.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const int m = ms[i];
      x[i].resize(static_cast<std::size_t>(m) * fin);
      for (auto& v : x[i]) v = rng.uniform(-1, 1);
      dy[i].resize(static_cast<std::size_t>(m));
      for (auto& v : dy[i]) v = rng.uniform(-1, 1);

      double* in = net.batch_input(m, ref_caches[i]);
      std::copy(x[i].begin(), x[i].end(), in);
      const double* y =
          net.forward_batch(m, ref_caches[i], GemmKind::Auto, GemmKind::Auto,
                            packed);
      y_ref[i].assign(y, y + m);
      double* g = net.batch_output_grad(m, ref_caches[i]);
      std::copy(dy[i].begin(), dy[i].end(), g);
      const double* dx =
          net.backward_input_batch(m, ref_caches[i], GemmKind::Auto, packed);
      dx_ref[i].assign(dx, dx + static_cast<std::size_t>(m) * fin);
    }

    // Sweep: same inputs, all items per layer through one gemm_batched.
    std::vector<MlpCache<double>> caches(ms.size());
    std::vector<MlpSweepItem<double>> items(ms.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
      items[i].m = ms[i];
      items[i].cache = &caches[i];
      double* in = net.batch_input(ms[i], caches[i]);
      std::copy(x[i].begin(), x[i].end(), in);
    }
    net.forward_sweep(items.data(), static_cast<int>(items.size()),
                      GemmKind::Auto, GemmKind::Auto, packed);
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const double* y = caches[i].acts.back().data();
      for (int r = 0; r < ms[i]; ++r) {
        EXPECT_EQ(y[r], y_ref[i][r]) << "item " << i << " packed " << packed;
      }
      double* g = net.batch_output_grad(ms[i], caches[i]);
      std::copy(dy[i].begin(), dy[i].end(), g);
    }
    net.backward_sweep(items.data(), static_cast<int>(items.size()),
                       GemmKind::Auto, packed);
    for (std::size_t i = 0; i < ms.size(); ++i) {
      const double* dx = caches[i].grads[0].data();
      for (std::size_t e = 0; e < dx_ref[i].size(); ++e) {
        EXPECT_EQ(dx[e], dx_ref[i][e]) << "item " << i << " packed "
                                       << packed;
      }
    }
  }
}

TEST(Mlp, SweepSingleItemMatchesBatch) {
  // The concatenated fitting slab runs ONE big item per net; pin the
  // degenerate nitems = 1 case, embedding-style Doubled resnets included
  // (those layers take the per-item fallback inside the sweep).
  Rng rng(29);
  Mlp<double> net = Mlp<double>::stack(1, {8, 16, 32}, 0);
  net.init_random(rng);
  net.finalize();
  const int m = 37;
  const int fin = net.input_dim();
  const int fout = net.output_dim();

  std::vector<double> x(static_cast<std::size_t>(m) * fin);
  for (auto& v : x) v = rng.uniform(-1, 1);

  MlpCache<double> ref_cache;
  std::copy(x.begin(), x.end(), net.batch_input(m, ref_cache));
  const double* y_ref =
      net.forward_batch(m, ref_cache, GemmKind::Auto, GemmKind::Auto);
  std::vector<double> dy(static_cast<std::size_t>(m) * fout);
  for (auto& v : dy) v = rng.uniform(-1, 1);
  std::copy(dy.begin(), dy.end(), net.batch_output_grad(m, ref_cache));
  const double* dx_ref =
      net.backward_input_batch(m, ref_cache, GemmKind::Auto);
  const std::vector<double> y_want(y_ref,
                                   y_ref + static_cast<std::size_t>(m) * fout);
  const std::vector<double> dx_want(
      dx_ref, dx_ref + static_cast<std::size_t>(m) * fin);

  MlpCache<double> cache;
  std::copy(x.begin(), x.end(), net.batch_input(m, cache));
  MlpSweepItem<double> item{m, &cache};
  net.forward_sweep(&item, 1, GemmKind::Auto, GemmKind::Auto);
  const double* y = cache.acts.back().data();
  for (std::size_t e = 0; e < y_want.size(); ++e) EXPECT_EQ(y[e], y_want[e]);
  std::copy(dy.begin(), dy.end(), net.batch_output_grad(m, cache));
  net.backward_sweep(&item, 1, GemmKind::Auto);
  const double* dx = cache.grads[0].data();
  for (std::size_t e = 0; e < dx_want.size(); ++e) {
    EXPECT_EQ(dx[e], dx_want[e]);
  }
}

// ---------------------------------------------------------------- Adam ----

TEST(Adam, MinimizesQuadratic) {
  // f(p) = sum (p_i - t_i)^2
  const std::vector<double> target = {1.0, -2.0, 3.0};
  std::vector<double> p = {0.0, 0.0, 0.0};
  Adam opt(p.size(), {.lr = 0.05});
  for (int it = 0; it < 2000; ++it) {
    std::vector<double> g(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) g[i] = 2 * (p[i] - target[i]);
    opt.step(p, g);
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], target[i], 1e-3);
  }
}

TEST(Adam, LrDecayReducesStepSize) {
  Adam opt(1, {.lr = 0.1, .lr_decay = 0.9});
  const double lr0 = opt.current_lr();
  std::vector<double> p = {0.0};
  opt.step(p, {1.0});
  EXPECT_LT(opt.current_lr(), lr0);
}

TEST(Adam, TrainsMlpOnToyFunction) {
  // End-to-end: fit y = sin(3x) on [-1, 1] with a small tanh net.  This
  // validates the whole forward/backward_full/Adam loop that the Deep
  // Potential trainer reuses.
  Rng rng(23);
  Mlp<double> net = Mlp<double>::stack(1, {16, 16}, 1);
  net.init_random(rng);
  MlpCache<double> cache;
  MlpGrads<double> grads = net.make_grads();

  auto params = net.pack_params();
  Adam opt(params.size(), {.lr = 3e-3});

  const int batch = 32;
  std::vector<double> x(batch), y(batch), t(batch), dy(batch);
  double final_loss = 1e9;
  for (int it = 0; it < 1500; ++it) {
    for (int b = 0; b < batch; ++b) {
      x[static_cast<std::size_t>(b)] = rng.uniform(-1, 1);
      t[static_cast<std::size_t>(b)] =
          std::sin(3.0 * x[static_cast<std::size_t>(b)]);
    }
    net.forward(x.data(), y.data(), batch, cache, GemmKind::Auto);
    double loss = 0;
    for (int b = 0; b < batch; ++b) {
      const double e = y[static_cast<std::size_t>(b)] -
                       t[static_cast<std::size_t>(b)];
      loss += e * e / batch;
      dy[static_cast<std::size_t>(b)] = 2 * e / batch;
    }
    final_loss = loss;
    grads.zero();
    net.backward_full(dy.data(), nullptr, batch, cache, grads,
                      GemmKind::Auto);
    std::vector<double> flat;
    flat.reserve(params.size());
    for (std::size_t l = 0; l < net.layers().size(); ++l) {
      flat.insert(flat.end(), grads.dw[l].d.begin(), grads.dw[l].d.end());
      flat.insert(flat.end(), grads.db[l].begin(), grads.db[l].end());
    }
    opt.step(params, flat);
    net.unpack_params(params);
  }
  EXPECT_LT(final_loss, 5e-3);
}

}  // namespace
}  // namespace dpmd::nn
