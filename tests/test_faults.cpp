// Fault-injection acceptance suite (ISSUE 6): corrupted/dropped/delayed
// comm payloads become named errors instead of hangs or silent wrong
// physics, and an injected numerical blow-up is healed by the rewind
// ladder — the recovered trajectory matches a fault-free oracle — or is
// aborted with a diagnosable incident log once the retry budget is spent.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "comm/domain_engine.hpp"
#include "md/lattice.hpp"
#include "md/pair_lj.hpp"
#include "md/sim.hpp"
#include "md/thermostat.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

struct GlobalSystem {
  md::Box box;
  std::vector<Vec3> x;
  std::vector<Vec3> v;
  std::vector<int> type;
  std::vector<double> masses;
};

GlobalSystem make_lj_gas(int natoms, double box_len, double t_kelvin,
                         double mass, uint64_t seed) {
  GlobalSystem sys;
  sys.box = md::Box::cubic(box_len);
  sys.masses = {mass};
  Rng rng(seed);
  md::Atoms atoms;
  const double min_sep = 3.0;
  int placed = 0;
  while (placed < natoms) {
    const Vec3 p{rng.uniform(0.0, box_len), rng.uniform(0.0, box_len),
                 rng.uniform(0.0, box_len)};
    bool ok = true;
    for (int i = 0; i < placed && ok; ++i) {
      ok = sys.box.minimum_image(p, atoms.x[static_cast<std::size_t>(i)])
               .norm() >= min_sep;
    }
    if (!ok) continue;
    atoms.add_local(p, {0, 0, 0}, 0, placed++);
  }
  md::thermalize(atoms, sys.masses, t_kelvin, rng);
  sys.x = atoms.x;
  sys.v.assign(atoms.v.begin(), atoms.v.begin() + atoms.nlocal);
  sys.type.assign(atoms.type.begin(), atoms.type.begin() + atoms.nlocal);
  return sys;
}

std::shared_ptr<md::PairLJ> make_lj(double rc) {
  auto pair = std::make_shared<md::PairLJ>(1, rc);
  pair->set_pair(0, 0, 0.0104, 3.4);
  return pair;
}

md::Atoms atoms_of(const GlobalSystem& sys) {
  md::Atoms atoms;
  for (std::size_t i = 0; i < sys.x.size(); ++i) {
    atoms.add_local(sys.x[i], sys.v[i], sys.type[i],
                    static_cast<std::int64_t>(i));
  }
  return atoms;
}

/// Delegating pair style that injects a NaN into atoms.f[0] starting at
/// force evaluation number `trigger_eval` (1-based).  `shots` = how many
/// evaluations inject from there on; -1 = every one (a persistent fault
/// the recovery ladder cannot outrun).  Runs through the default staged
/// adapter, so both engines hit the injection in their normal force path.
class FaultyPair : public md::Pair {
 public:
  FaultyPair(std::shared_ptr<md::Pair> inner, int trigger_eval, int shots = 1)
      : inner_(std::move(inner)), trigger_eval_(trigger_eval),
        shots_(shots) {}

  std::string name() const override { return "faulty(" + inner_->name() + ")"; }
  double cutoff() const override { return inner_->cutoff(); }
  bool needs_full_list() const override { return inner_->needs_full_list(); }
  void on_lists_rebuilt() override { inner_->on_lists_rebuilt(); }

  md::ForceResult compute(md::Atoms& atoms,
                          const md::NeighborList& list) override {
    const md::ForceResult res = inner_->compute(atoms, list);
    ++evals_;
    if (evals_ >= trigger_eval_ && shots_ != 0 && atoms.nlocal > 0) {
      if (shots_ > 0) --shots_;
      atoms.f[0].x = std::numeric_limits<double>::quiet_NaN();
    }
    return res;
  }

 private:
  std::shared_ptr<md::Pair> inner_;
  int trigger_eval_;
  int shots_;
  int evals_ = 0;
};

// --------------------------------------- corrupted payload detection ----

// The halo tags live in [100, 200); migration is 700, force return 800
// (src/comm constants).  Payloads are wire-framed with a 16-byte header.
constexpr std::size_t kWireHeaderBytes = 16;

void run_two_rank_lj(simmpi::World& w, const GlobalSystem& sys, int steps) {
  w.run([&](simmpi::Rank& rank) {
    const simmpi::CartGrid grid(2, 1, 1);
    // skin 0 / rebuild every step: every step exercises migrate, the full
    // halo exchange and the ghost-force return.
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, make_lj(5.0),
                              {.dt_fs = 1.0, .skin = 0.0, .rebuild_every = 1});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(steps);
  });
}

TEST(CommFaults, CorruptedHaloPayloadIsNamedChecksumError) {
  const GlobalSystem sys = make_lj_gas(140, 20.0, 60.0, 40.0, 211);
  simmpi::World w(2);
  std::atomic<bool> armed{true};
  w.set_fault_hook([&](int, int, int tag, std::size_t bytes) {
    simmpi::Fault f;
    if (tag >= 100 && tag < 200 && bytes > kWireHeaderBytes + 8 &&
        armed.exchange(false)) {
      f.kind = simmpi::Fault::Kind::kCorrupt;
      f.corrupt_offset = kWireHeaderBytes + 4;  // inside the data section
    }
    return f;
  });
  try {
    run_two_rank_lj(w, sys, 4);
    FAIL() << "corrupted halo payload went undetected";
  } catch (const dpmd::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("halo"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  }
  EXPECT_EQ(w.faults_injected(), 1u);
}

TEST(CommFaults, CorruptedMigrationHeaderIsNamedLengthError) {
  const GlobalSystem sys = make_lj_gas(140, 20.0, 60.0, 40.0, 223);
  simmpi::World w(2);
  std::atomic<bool> armed{true};
  w.set_fault_hook([&](int, int, int tag, std::size_t) {
    simmpi::Fault f;
    if (tag == 700 && armed.exchange(false)) {
      f.kind = simmpi::Fault::Kind::kCorrupt;
      f.corrupt_offset = 0;  // the header's element count
    }
    return f;
  });
  try {
    run_two_rank_lj(w, sys, 2);
    FAIL() << "corrupted migration header went undetected";
  } catch (const dpmd::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("migration atoms"), std::string::npos) << what;
  }
}

TEST(CommFaults, CorruptedForceReturnIsNamedChecksumError) {
  const GlobalSystem sys = make_lj_gas(140, 20.0, 60.0, 40.0, 227);
  simmpi::World w(2);
  std::atomic<bool> armed{true};
  w.set_fault_hook([&](int, int, int tag, std::size_t bytes) {
    simmpi::Fault f;
    if (tag == 800 && bytes > kWireHeaderBytes + 8 && armed.exchange(false)) {
      f.kind = simmpi::Fault::Kind::kCorrupt;
      f.corrupt_offset = kWireHeaderBytes + 4;
    }
    return f;
  });
  try {
    run_two_rank_lj(w, sys, 4);
    FAIL() << "corrupted ghost-force return went undetected";
  } catch (const dpmd::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("returned ghost forces"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  }
}

TEST(CommFaults, StalledRankBecomesTimeoutNotHang) {
  const GlobalSystem sys = make_lj_gas(140, 20.0, 60.0, 40.0, 229);
  simmpi::World w(2);
  w.set_recv_timeout(0.3);
  std::atomic<bool> armed{true};
  w.set_fault_hook([&](int, int, int tag, std::size_t) {
    simmpi::Fault f;
    if (tag >= 100 && tag < 200 && armed.exchange(false)) {
      f.kind = simmpi::Fault::Kind::kDelay;
      f.delay_s = 1.5;  // well past the receiver's deadline
    }
    return f;
  });
  EXPECT_THROW(run_two_rank_lj(w, sys, 4), simmpi::TimeoutError);
}

// ------------------------------------- numerical blow-up recovery ----

TEST(HealthGuard, SimNaNBlowupRecoversOntoTheOracleTrajectory) {
  // Snapshots land on rebuild boundaries (snapshot_every == rebuild_every),
  // so retry 1 — rewind + forced rebuild, no numeric changes — replays the
  // undisturbed trajectory bit-for-bit, Langevin RNG stream included.
  const GlobalSystem sys = make_lj_gas(80, 22.0, 50.0, 40.0, 307);
  md::SimConfig cfg{.dt_fs = 1.0, .skin = 1.2, .rebuild_every = 4};
  cfg.health.snapshot_every = 4;
  const auto mk_sim = [&](std::shared_ptr<md::Pair> pair) {
    auto s = std::make_unique<md::Sim>(sys.box, atoms_of(sys), sys.masses,
                                       std::move(pair), cfg);
    s->set_thermostat(std::make_unique<md::LangevinThermostat>(50.0, 0.05, 5));
    return s;
  };

  auto oracle = mk_sim(make_lj(5.0));
  oracle->run(12);
  ASSERT_TRUE(oracle->incidents().empty());

  // Evaluation 8 = step 7 (setup is evaluation 1): one transient NaN, two
  // steps past the step-4 snapshot.
  auto faulty = mk_sim(std::make_shared<FaultyPair>(make_lj(5.0), 8));
  faulty->run(12);

  EXPECT_EQ(faulty->steps_done(), 12);
  ASSERT_EQ(faulty->incidents().size(), 1u);
  EXPECT_EQ(faulty->incidents().entries()[0].phase, "health");
  for (int i = 0; i < oracle->atoms().nlocal; ++i) {
    const auto k = static_cast<std::size_t>(i);
    EXPECT_LT((faulty->atoms().x[k] - oracle->atoms().x[k]).norm(), 1e-10);
    EXPECT_LT((faulty->atoms().v[k] - oracle->atoms().v[k]).norm(), 1e-10);
  }
  // No NaN survived into the recovered state.
  for (int i = 0; i < faulty->atoms().nlocal; ++i) {
    const auto k = static_cast<std::size_t>(i);
    EXPECT_TRUE(std::isfinite(faulty->atoms().x[k].x));
    EXPECT_TRUE(std::isfinite(faulty->atoms().v[k].x));
  }
}

TEST(HealthGuard, PersistentFaultAbortsWithIncidentLog) {
  const GlobalSystem sys = make_lj_gas(80, 22.0, 50.0, 40.0, 311);
  md::SimConfig cfg{.dt_fs = 1.0, .skin = 1.2, .rebuild_every = 4};
  cfg.health.snapshot_every = 4;

  // Every evaluation from step 6 on injects: the full ladder runs (rewind,
  // dt backoff, conservative numerics) and then aborts diagnosably.
  md::Sim sim(sys.box, atoms_of(sys), sys.masses,
              std::make_shared<FaultyPair>(make_lj(5.0), 7, -1), cfg);
  try {
    sim.run(12);
    FAIL() << "persistent NaN fault did not abort";
  } catch (const dpmd::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numerical health trip"), std::string::npos) << what;
    EXPECT_NE(what.find("retry budget"), std::string::npos) << what;
    EXPECT_NE(what.find("incidents"), std::string::npos) << what;
  }
  // max_retries rewinds plus the aborting trip, all on the log.
  EXPECT_GE(sim.incidents().size(),
            static_cast<std::size_t>(cfg.health.max_retries + 1));
  // The ladder escalated: some recovery action backed off the timestep.
  bool saw_dt_backoff = false;
  for (const auto& inc : sim.incidents().entries()) {
    if (inc.action.find("dt ->") != std::string::npos) saw_dt_backoff = true;
  }
  EXPECT_TRUE(saw_dt_backoff);
}

TEST(HealthGuard, DomainNaNOnOneRankRewindsAllRanksOntoTheOracle) {
  // The trip verdict is collective: a NaN on rank 0 must rewind every rank
  // to the same snapshot step, after which the recovered trajectory matches
  // a fault-free oracle at 1e-10.
  const GlobalSystem sys = make_lj_gas(140, 24.0, 60.0, 40.0, 313);
  const simmpi::CartGrid grid(2, 1, 1);
  comm::DomainConfig cfg{.dt_fs = 1.0, .skin = 0.9, .rebuild_every = 5};
  cfg.health.snapshot_every = 5;

  const auto run_domain = [&](bool with_fault) {
    std::vector<comm::DomainEngine::GlobalAtom> out;
    std::mutex mu;
    std::size_t rank0_incidents = 0;
    simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
      // Evaluation 8 = step 7 on rank 0 only (the first step runs two
      // evaluations: the setup exchange plus the step's own).
      std::shared_ptr<md::Pair> pair =
          with_fault && rank.rank() == 0
              ? std::make_shared<FaultyPair>(make_lj(5.0), 8)
              : std::static_pointer_cast<md::Pair>(make_lj(5.0));
      comm::DomainEngine engine(rank, grid, sys.box, sys.masses,
                                std::move(pair), cfg);
      engine.seed(sys.x, sys.v, sys.type);
      engine.run(12);
      EXPECT_EQ(engine.steps_done(), 12);
      if (with_fault) {
        // Collective recovery: both the faulty and the healthy rank must
        // have rewound (and logged it).
        EXPECT_GE(engine.incidents().size(), 1u) << "rank " << rank.rank();
      } else {
        EXPECT_TRUE(engine.incidents().empty());
      }
      const auto all = engine.gather_all();
      if (rank.rank() == 0) {
        std::lock_guard lock(mu);
        out = all;
        rank0_incidents = engine.incidents().size();
      }
    });
    return std::make_pair(out, rank0_incidents);
  };

  const auto [oracle, oracle_incidents] = run_domain(false);
  const auto [recovered, recovered_incidents] = run_domain(true);
  EXPECT_EQ(oracle_incidents, 0u);
  EXPECT_GE(recovered_incidents, 1u);

  ASSERT_EQ(recovered.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(recovered[i].tag, oracle[i].tag);
    EXPECT_LT(sys.box.minimum_image(recovered[i].x, oracle[i].x).norm(),
              1e-10);
    EXPECT_LT((recovered[i].v - oracle[i].v).norm(), 1e-10);
  }
}

}  // namespace
}  // namespace dpmd
