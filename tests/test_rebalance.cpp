// Workload-aware dynamic load balancing (ISSUE 7): DomainEngine with
// DomainConfig::{rebalance_every, rebalance_damping} measures per-rank
// pair-phase seconds, allgathers them, and shifts the decomposition planes
// on rebuild steps.  The physics must not notice: on every step of a
// balanced trajectory — whatever geometry the measured costs produced —
// the gathered forces must match a fresh single-process evaluation on the
// uniform (undecomposed) system at the same positions, to 1e-10.  Also
// covers atom conservation across boundary-shift migrations, the planner
// guard rails as seen from the engine, mid-balance checkpoint/restart on a
// non-uniform grid, and composition with cadence and overlap schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "comm/domain_engine.hpp"
#include "loadbalance/loadbalance.hpp"
#include "md/ghosts.hpp"
#include "md/pair_lj.hpp"
#include "md/thermo.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

struct GlobalSystem {
  md::Box box;
  std::vector<Vec3> x;
  std::vector<Vec3> v;
  std::vector<int> type;
  std::vector<double> masses;
};

/// Heterogeneous-density system: an off-center spherical droplet in
/// vacuum.  The blob sits toward the low-x/low-y corner, so a uniform
/// grid gives the low-coordinate ranks nearly all of the pair work — the
/// imbalance the rebalancer exists to fix.
GlobalSystem make_droplet(int natoms, double box_len, const Vec3& center,
                          double radius, double t_kelvin, double mass,
                          uint64_t seed) {
  GlobalSystem sys;
  sys.box = md::Box::cubic(box_len);
  sys.masses = {mass};
  Rng rng(seed);
  md::Atoms atoms;
  const double min_sep = 3.0;
  int placed = 0;
  int attempts = 0;
  while (placed < natoms) {
    // Rejection sampling saturates near ~38% sphere packing; fail loudly
    // instead of spinning if a caller asks for an over-dense droplet.
    DPMD_REQUIRE(++attempts < 2000000, "droplet too dense to place");
    const Vec3 p{center.x + rng.uniform(-radius, radius),
                 center.y + rng.uniform(-radius, radius),
                 center.z + rng.uniform(-radius, radius)};
    if ((p - center).norm() > radius) continue;
    bool ok = p.x > 0.5 && p.y > 0.5 && p.z > 0.5 && p.x < box_len - 0.5 &&
              p.y < box_len - 0.5 && p.z < box_len - 0.5;
    for (int i = 0; i < placed && ok; ++i) {
      ok = sys.box.minimum_image(p, atoms.x[static_cast<std::size_t>(i)])
               .norm() >= min_sep;
    }
    if (!ok) continue;
    atoms.add_local(p, {0, 0, 0}, 0, placed++);
  }
  md::thermalize(atoms, sys.masses, t_kelvin, rng);
  sys.x = atoms.x;
  sys.v.assign(atoms.v.begin(), atoms.v.begin() + atoms.nlocal);
  sys.type.assign(atoms.type.begin(), atoms.type.begin() + atoms.nlocal);
  return sys;
}

std::shared_ptr<md::PairLJ> make_lj(double rc) {
  auto pair = std::make_shared<md::PairLJ>(1, rc);
  pair->set_pair(0, 0, 0.0104, 3.4);
  return pair;
}

/// The uniform-grid oracle: a fresh single-process force evaluation at the
/// given gathered positions — periodic ghosts, exact-cutoff lists, no
/// decomposition, no caches.
struct Reference {
  std::vector<Vec3> f;
  double pe = 0.0;
};

Reference reference_forces(
    const GlobalSystem& sys,
    const std::vector<comm::DomainEngine::GlobalAtom>& all,
    const std::function<std::shared_ptr<md::Pair>()>& mk) {
  md::Atoms atoms;
  for (const auto& a : all) {
    Vec3 p = a.x;
    sys.box.wrap(p);
    atoms.add_local(p, {0, 0, 0},
                    sys.type[static_cast<std::size_t>(a.tag)], a.tag);
  }
  auto pair = mk();
  md::build_periodic_ghosts(atoms, sys.box, pair->cutoff());
  md::NeighborList list({pair->cutoff(), 0.0, pair->needs_full_list()});
  list.build(atoms, sys.box);
  atoms.zero_forces();
  const md::ForceResult res = pair->compute(atoms, list);
  for (int g = 0; g < atoms.nghost; ++g) {
    atoms.f[static_cast<std::size_t>(
        atoms.ghost_parent[static_cast<std::size_t>(g)])] +=
        atoms.f[static_cast<std::size_t>(atoms.nlocal + g)];
  }
  Reference ref;
  ref.f.assign(atoms.f.begin(), atoms.f.begin() + atoms.nlocal);
  ref.pe = res.pe;
  return ref;
}

/// What a balanced run reports back to the checks below.
struct RunReport {
  int rebalances = 0;
  std::array<std::vector<double>, 3> planes;
};

/// Steps a rebalancing engine and checks the gathered forces against the
/// fresh uniform-grid oracle after EVERY step — rebuilds, refreshes, and
/// boundary-shift steps alike.  With ckpt_step >= 0, the engine saves a
/// per-rank checkpoint after that step, is torn down, and a brand-new
/// engine restores and carries the trajectory on (the mid-balance restart
/// path); the restored planes must be bit-equal to the saved ones.
RunReport run_and_check_every_step(
    const GlobalSystem& sys, const simmpi::CartGrid& grid,
    const std::function<std::shared_ptr<md::Pair>()>& mk,
    comm::DomainConfig cfg, int steps, double ftol, int ckpt_step = -1,
    const std::string& ckpt_base = "") {
  RunReport report;
  std::mutex mu;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    std::optional<comm::DomainEngine> eng;
    eng.emplace(rank, grid, sys.box, sys.masses, mk(), cfg);
    eng->seed(sys.x, sys.v, sys.type);
    for (int s = 0; s < steps; ++s) {
      eng->step();
      const auto all = eng->gather_all();  // collective
      const double pe = eng->total_pe();   // collective
      if (s == ckpt_step) {
        // Save, tear the engine down, and resume from the file: a restart
        // mid-balance must come back on the saved (non-uniform) planes.
        // Forces are not serialized — the resumed engine recomputes them on
        // its next step, which the following iterations keep checking.
        const auto saved_planes = eng->planes();
        eng->save_checkpoint_file(ckpt_base);
        rank.barrier();  // every rank's file exists before any restore
        eng.emplace(rank, grid, sys.box, sys.masses, mk(), cfg);
        eng->restore_checkpoint_file(ckpt_base);
        EXPECT_EQ(eng->planes(), saved_planes)
            << "restore must resume the balanced decomposition bit-exactly";
      }
      if (rank.rank() != 0) continue;
      ASSERT_EQ(all.size(), sys.x.size()) << "step " << s;
      const Reference ref = reference_forces(sys, all, mk);
      EXPECT_NEAR(pe, ref.pe, 1e-9 * std::max(1.0, std::fabs(ref.pe)))
          << "step " << s;
      double fscale = 1e-3;  // rel-vs-abs floor for near-zero forces
      for (const Vec3& f : ref.f) fscale = std::max(fscale, f.norm());
      for (std::size_t i = 0; i < all.size(); ++i) {
        const Vec3 df =
            all[i].f - ref.f[static_cast<std::size_t>(all[i].tag)];
        EXPECT_LT(df.norm() / fscale, ftol)
            << "step " << s << " tag " << all[i].tag;
      }
    }
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      report.rebalances = eng->rebalance_count();
      report.planes = eng->planes();
    }
  });
  if (ckpt_step >= 0) {
    for (int r = 0; r < grid.size(); ++r) {
      std::remove(
          comm::DomainEngine::rank_checkpoint_path(ckpt_base, r).c_str());
    }
  }
  return report;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

bool planes_uniform(const std::array<std::vector<double>, 3>& planes,
                    const md::Box& box, const simmpi::CartGrid& grid) {
  const int n[3] = {grid.nx(), grid.ny(), grid.nz()};
  for (int d = 0; d < 3; ++d) {
    if (planes[static_cast<std::size_t>(d)] !=
        lb::uniform_planes(box.lo[d], box.hi[d], n[d])) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// The acceptance pairing: balanced droplet trajectory vs the uniform oracle
// ---------------------------------------------------------------------------

TEST(Rebalance, DropletMatchesUniformOracleOver100StepsWithRestart) {
  // 4 ranks on a 32 A box: the droplet loads the low-x/low-y ranks, the
  // rebalancer shifts planes toward it, and every one of the 110 steps —
  // including a checkpoint/restart at step 54, mid-balance, on an already
  // non-uniform grid — must match the fresh oracle at 1e-10.
  const GlobalSystem sys =
      make_droplet(56, 32.0, {11.5, 11.5, 16.0}, 10.5, 40.0, 40.0, 61);
  const simmpi::CartGrid grid(2, 2, 1);
  const auto mk = [] { return make_lj(5.0); };
  // 2*(rcut+skin) = 12 <= 16 (the initial sub-box width): feasible.
  const auto report = run_and_check_every_step(
      sys, grid, mk,
      {.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 5, .rebalance_every = 10},
      110, 1e-10, /*ckpt_step=*/54, temp_path("rebalance_midrun.ckpt"));
  // The imbalance is real, so planes must actually have moved — this is a
  // rebalance test, not a no-op test.
  EXPECT_GE(report.rebalances, 1);
  EXPECT_FALSE(planes_uniform(report.planes, sys.box, grid));
}

TEST(Rebalance, DropletMatchesUniformOracleAt8Ranks) {
  const GlobalSystem sys =
      make_droplet(56, 32.0, {11.5, 11.5, 12.5}, 10.5, 40.0, 40.0, 67);
  const simmpi::CartGrid grid(2, 2, 2);
  const auto mk = [] { return make_lj(5.0); };
  const auto report = run_and_check_every_step(
      sys, grid, mk,
      {.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 5, .rebalance_every = 10},
      40, 1e-10);
  EXPECT_GE(report.rebalances, 1);
}

// ---------------------------------------------------------------------------
// Conservation + guard rails as seen from the engine
// ---------------------------------------------------------------------------

TEST(Rebalance, BoundaryShiftConservesAtoms) {
  // Plane moves hand atoms over through the normal migration path: after
  // many balance events every tag must still exist exactly once.
  const GlobalSystem sys =
      make_droplet(48, 32.0, {11.5, 11.5, 16.0}, 10.5, 120.0, 40.0, 71);
  const simmpi::CartGrid grid(2, 2, 1);
  std::mutex mu;
  std::vector<comm::DomainEngine::GlobalAtom> all;
  int rebalances = 0;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(
        rank, grid, sys.box, sys.masses, make_lj(5.0),
        {.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 5,
         .rebalance_every = 5, .rebalance_damping = 1.0});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(40);
    const auto gathered = engine.gather_all();
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      all = gathered;
      rebalances = engine.rebalance_count();
    }
  });
  EXPECT_GE(rebalances, 2);
  ASSERT_EQ(all.size(), 48u);
  std::set<std::int64_t> tags;
  for (const auto& a : all) tags.insert(a.tag);
  EXPECT_EQ(tags.size(), 48u);
}

TEST(Rebalance, MinWidthGuardHoldsUnderExtremeImbalance) {
  // Damping 1 and nearly all work on one rank: the engine-side guard —
  // no slab thinner than 2*(rcut+skin) — must hold on every dimension
  // after every event.
  const GlobalSystem sys =
      make_droplet(28, 32.0, {9.0, 9.0, 9.0}, 8.5, 60.0, 40.0, 73);
  const simmpi::CartGrid grid(2, 2, 1);
  const double rcut = 5.0, skin = 1.0;
  std::mutex mu;
  std::array<std::vector<double>, 3> planes;
  int rebalances = 0;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(
        rank, grid, sys.box, sys.masses, make_lj(rcut),
        {.dt_fs = 1.0, .skin = skin, .rebuild_every = 5,
         .rebalance_every = 5, .rebalance_damping = 1.0});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(50);
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      planes = engine.planes();
      rebalances = engine.rebalance_count();
    }
  });
  EXPECT_GE(rebalances, 2);
  const double min_w = 2.0 * (rcut + skin);
  for (int d = 0; d < 2; ++d) {  // z is unsplit
    for (std::size_t k = 0; k + 1 < planes[d].size(); ++k) {
      EXPECT_GE(planes[d][k + 1] - planes[d][k], min_w - 1e-9)
          << "dim " << d << " slab " << k;
    }
  }
}

TEST(Rebalance, DampingZeroFreezesTheGridBitExactly) {
  // damping = 0 must be indistinguishable from rebalancing off: no events,
  // planes bit-equal to the uniform decomposition.
  const GlobalSystem sys =
      make_droplet(48, 32.0, {11.5, 11.5, 16.0}, 10.5, 40.0, 40.0, 79);
  const simmpi::CartGrid grid(2, 2, 1);
  std::mutex mu;
  std::array<std::vector<double>, 3> planes;
  int rebalances = -1;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(
        rank, grid, sys.box, sys.masses, make_lj(5.0),
        {.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 5,
         .rebalance_every = 5, .rebalance_damping = 0.0});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(30);
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      planes = engine.planes();
      rebalances = engine.rebalance_count();
    }
  });
  EXPECT_EQ(rebalances, 0);
  EXPECT_TRUE(planes_uniform(planes, sys.box, grid));
}

TEST(Rebalance, InfeasibleGeometryIsRejectedAtConstruction) {
  // 4 slabs over 32 A cannot honor min_width = 2*(5+1) = 12: the engine
  // must refuse up front instead of wedging the halo later.
  const GlobalSystem sys =
      make_droplet(24, 32.0, {11.5, 11.5, 16.0}, 10.5, 40.0, 40.0, 83);
  const simmpi::CartGrid grid(4, 1, 1);
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    EXPECT_THROW(comm::DomainEngine(rank, grid, sys.box, sys.masses,
                                    make_lj(5.0),
                                    {.dt_fs = 1.0, .skin = 1.0,
                                     .rebalance_every = 10}),
                 dpmd::Error);
  });
}

// ---------------------------------------------------------------------------
// Composition: cadence 50, overlap on/off, legacy schedule
// ---------------------------------------------------------------------------

TEST(Rebalance, ComposesWithCadenceFifty) {
  // rebuild_every = 50 (the paper's production cadence): the balance
  // window expires long before the cadence rebuild, so the shift must wait
  // for it (or for a drift rebuild) and the refresh replay in between must
  // keep matching the oracle on the balanced geometry.
  const GlobalSystem sys =
      make_droplet(48, 32.0, {11.5, 11.5, 16.0}, 10.5, 40.0, 40.0, 89);
  const simmpi::CartGrid grid(2, 2, 1);
  const auto mk = [] { return make_lj(5.0); };
  const auto report = run_and_check_every_step(
      sys, grid, mk,
      {.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 50, .rebalance_every = 10},
      60, 1e-10);
  EXPECT_GE(report.rebalances, 1);
}

TEST(Rebalance, ComposesWithOverlapOnOffAndLegacy) {
  const GlobalSystem sys =
      make_droplet(48, 32.0, {11.5, 11.5, 16.0}, 10.5, 40.0, 40.0, 97);
  const simmpi::CartGrid grid(2, 2, 1);
  const auto mk = [] { return make_lj(5.0); };
  comm::DomainConfig cfg{.dt_fs = 1.0, .skin = 1.0, .rebuild_every = 5,
                         .rebalance_every = 10};
  cfg.staged = true;
  cfg.overlap = true;
  EXPECT_GE(run_and_check_every_step(sys, grid, mk, cfg, 25, 1e-10)
                .rebalances,
            1);
  cfg.overlap = false;
  EXPECT_GE(run_and_check_every_step(sys, grid, mk, cfg, 25, 1e-10)
                .rebalances,
            1);
  cfg.staged = false;
  EXPECT_GE(run_and_check_every_step(sys, grid, mk, cfg, 25, 1e-10)
                .rebalances,
            1);
}

}  // namespace
}  // namespace dpmd
