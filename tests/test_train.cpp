#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/train.hpp"
#include "md/lattice.hpp"
#include "md/pair_lj.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"

namespace dpmd::dp {
namespace {

/// Tiny single-type model for fast training tests.
ModelConfig train_config() {
  ModelConfig cfg;
  cfg.ntypes = 1;
  cfg.descriptor.rcut = 5.0;
  cfg.descriptor.rcut_smth = 2.0;
  cfg.descriptor.sel = {40};
  cfg.descriptor.emb_widths = {6, 12};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {24, 24};
  return cfg;
}

/// LJ-argon reference data from a short thermostatted trajectory.
Dataset make_lj_dataset(int nsamples, uint64_t seed, double t_kelvin = 120.0) {
  Rng rng(seed);
  md::Box box;
  md::Atoms atoms = md::make_fcc(5.0, 2, 2, 2, 0, box);
  md::thermalize(atoms, {40.0}, t_kelvin, rng);
  auto pair = std::make_shared<md::PairLJ>(1, 5.0);
  pair->set_pair(0, 0, 0.0104, 3.4);
  md::Sim sim(box, std::move(atoms), {40.0}, pair, {.dt_fs = 2.0});
  sim.set_thermostat(
      std::make_unique<md::LangevinThermostat>(t_kelvin, 0.05, seed + 1));
  sim.run(50);  // decorrelate from the lattice
  return sample_reference_trajectory(sim, nsamples, 20);
}

/// Multi-temperature dataset: enough energy spread that the constant bias
/// alone cannot fit it and the networks must learn structure.
Dataset make_diverse_dataset(uint64_t seed) {
  Dataset data;
  for (const double t : {60.0, 160.0, 300.0}) {
    const Dataset part = make_lj_dataset(3, seed + static_cast<uint64_t>(t), t);
    for (const auto& s : part.samples()) data.add(s);
  }
  return data;
}

TEST(Dataset, SamplesCarryLabels) {
  const Dataset data = make_lj_dataset(4, 5);
  ASSERT_EQ(data.size(), 4u);
  for (const auto& s : data.samples()) {
    EXPECT_EQ(s.positions.size(), 32u);
    EXPECT_EQ(s.forces.size(), 32u);
    EXPECT_NE(s.energy, 0.0);
    // Labels must differ between snapshots (the trajectory moves).
  }
  EXPECT_NE(data.samples()[0].energy, data.samples()[3].energy);
}

TEST(EnergyBias, CentersFreshModel) {
  DPModel model(train_config());
  Rng rng(81);
  model.init_random(rng);

  const Dataset data = make_lj_dataset(4, 11);
  EvalOptions opts;
  opts.compressed = false;

  const AccuracyReport before = evaluate_accuracy(model, data, opts);
  fit_env_scale(model, data);
  fit_energy_bias(model, data);
  const AccuracyReport after = evaluate_accuracy(model, data, opts);
  // A random net predicts energies near zero while LJ cohesion is strongly
  // negative; the bias must absorb that offset almost entirely.
  EXPECT_LT(after.energy_rmse_per_atom, before.energy_rmse_per_atom * 0.5);
}

TEST(Trainer, GradientMatchesFiniteDifference) {
  DPModel model(train_config());
  Rng rng(87);
  model.init_random(rng);
  const Dataset data = make_lj_dataset(1, 23);
  fit_env_scale(model, data);
  fit_energy_bias(model, data);
  const TrainSample& sample = data.samples()[0];

  TrainConfig tcfg;
  Trainer trainer(model, tcfg);
  const auto grad = trainer.gradient_for(sample);
  ASSERT_EQ(grad.size(), model.param_count());

  EvalOptions opts;
  opts.compressed = false;
  const auto loss_of = [&](const std::vector<double>& params) {
    model.unpack_params(params);
    const auto report = evaluate_accuracy(model, data, opts);
    return report.energy_rmse_per_atom * report.energy_rmse_per_atom;
  };

  const auto params = model.pack_params();
  const double h = 1e-6;
  double max_rel = 0.0;
  for (std::size_t i = 0; i < grad.size(); i += 97) {  // sampled sweep
    auto pp = params;
    auto pm = params;
    pp[i] += h;
    pm[i] -= h;
    const double fd = (loss_of(pp) - loss_of(pm)) / (2 * h);
    const double scale = std::max({std::fabs(fd), std::fabs(grad[i]), 1e-6});
    max_rel = std::max(max_rel, std::fabs(fd - grad[i]) / scale);
    EXPECT_NEAR(grad[i], fd, 1e-6 + 1e-4 * scale) << "param " << i;
  }
  model.unpack_params(params);
  EXPECT_LT(max_rel, 1e-3);
}

// The trainer is deliberately unfused (ISSUE 5): it differentiates the
// embedding *network* that the fused table path replaces, so it rides the
// slab contract_*_batch drivers and serves as a gradient oracle for them
// regardless of the inference default EvalOptions::fused_table = true.
TEST(Trainer, BatchedGradientsMatchPerAtomPath) {
  // The default trainer routes samples through the GEMM-cast batched
  // forward/backward (TrainConfig::block_size = 64); block_size <= 1 keeps
  // the legacy per-atom evaluate_atom-style path.  Same sample, same
  // parameters: the gradients must agree to summation round-off, including
  // at a block size that leaves a remainder block.
  DPModel model(train_config());
  Rng rng(91);
  model.init_random(rng);
  const Dataset data = make_lj_dataset(1, 29);
  fit_env_scale(model, data);
  fit_energy_bias(model, data);
  const TrainSample& sample = data.samples()[0];  // 32 atoms

  TrainConfig ref_cfg;
  ref_cfg.block_size = 1;
  Trainer ref_trainer(model, ref_cfg);
  const auto ref = ref_trainer.gradient_for(sample);

  for (const int block : {5, 64}) {  // 32 % 5 != 0: remainder block
    TrainConfig cfg;
    cfg.block_size = block;
    Trainer trainer(model, cfg);
    const auto got = trainer.gradient_for(sample);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const double scale =
          std::max({std::fabs(ref[i]), std::fabs(got[i]), 1e-8});
      EXPECT_LT(std::fabs(got[i] - ref[i]) / scale, 1e-7)
          << "param " << i << " block " << block;
    }
  }
}

TEST(Trainer, LossDecreases) {
  DPModel model(train_config());
  Rng rng(83);
  model.init_random(rng);

  const Dataset data = make_lj_dataset(6, 13);
  fit_env_scale(model, data);
  fit_energy_bias(model, data);

  TrainConfig tcfg;
  tcfg.steps = 60;
  tcfg.batch = 3;
  tcfg.adam.lr = 2e-3;
  Trainer trainer(model, tcfg);

  // Average the loss over the first and last few steps (batches are
  // stochastic).
  double first = 0.0, last = 0.0;
  for (int s = 0; s < 60; ++s) {
    const double loss = trainer.step(data);
    if (s < 5) first += loss;
    if (s >= 55) last += loss;
  }
  EXPECT_LT(last, first);
  EXPECT_EQ(trainer.steps_taken(), 60);
}

TEST(Trainer, ImprovesEnergyAccuracy) {
  DPModel model(train_config());
  Rng rng(89);
  model.init_random(rng);

  // Mixed-temperature data: the constant bias cannot absorb the spread, so
  // accuracy gains must come from the networks.
  const Dataset data = make_diverse_dataset(17);
  fit_env_scale(model, data);
  fit_energy_bias(model, data);
  EvalOptions opts;
  opts.compressed = false;

  const AccuracyReport before = evaluate_accuracy(model, data, opts);
  TrainConfig tcfg;
  tcfg.steps = 500;
  tcfg.batch = 3;
  tcfg.adam.lr = 5e-3;
  tcfg.adam.lr_decay = 0.998;
  Trainer(model, tcfg).train(data);
  const AccuracyReport after = evaluate_accuracy(model, data, opts);
  EXPECT_LT(after.energy_rmse_per_atom, before.energy_rmse_per_atom);
}

TEST(Accuracy, PrecisionOrderingMatchesTableII) {
  // The Table II shape: double == MIX-fp32 (to fp32 roundoff, far below the
  // model error), MIX-fp16 slightly worse in energy, forces essentially
  // unchanged.
  DPModel model(train_config());
  Rng rng(97);
  model.init_random(rng);
  const Dataset data = make_lj_dataset(3, 19);
  fit_env_scale(model, data);
  fit_energy_bias(model, data);

  EvalOptions o64, o32, o16;
  o64.precision = Precision::Double;
  o32.precision = Precision::MixFp32;
  o16.precision = Precision::MixFp16;
  o64.compressed = o32.compressed = o16.compressed = false;

  const auto r64 = evaluate_accuracy(model, data, o64);
  const auto r32 = evaluate_accuracy(model, data, o32);
  const auto r16 = evaluate_accuracy(model, data, o16);

  EXPECT_NEAR(r32.energy_rmse_per_atom, r64.energy_rmse_per_atom,
              2e-4 + 0.05 * r64.energy_rmse_per_atom);
  EXPECT_NEAR(r32.force_rmse, r64.force_rmse, 0.05 * r64.force_rmse + 1e-4);
  // fp16 energy error is bounded but measurable.
  EXPECT_LT(r16.energy_rmse_per_atom, r64.energy_rmse_per_atom + 0.05);
}

}  // namespace
}  // namespace dpmd::dp
