#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "md/box.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "md/pair_eam.hpp"
#include "md/pair_lj.hpp"
#include "md/pair_morse.hpp"
#include "md/pair_water_ref.hpp"
#include "md/rdf.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "md/units.hpp"
#include "util/random.hpp"

namespace dpmd::md {
namespace {

// ----------------------------------------------------------------- Box ----

TEST(Box, WrapAndImageTracking) {
  const Box box({0, 0, 0}, {10, 10, 10});
  Vec3 p{12.5, -0.5, 9.9};
  int image[3] = {0, 0, 0};
  box.wrap(p, image);
  EXPECT_DOUBLE_EQ(p.x, 2.5);
  EXPECT_DOUBLE_EQ(p.y, 9.5);
  EXPECT_DOUBLE_EQ(p.z, 9.9);
  EXPECT_EQ(image[0], 1);
  EXPECT_EQ(image[1], -1);
  EXPECT_EQ(image[2], 0);
}

TEST(Box, MinimumImage) {
  const Box box({0, 0, 0}, {10, 10, 10});
  const Vec3 d = box.minimum_image({9.5, 0, 0}, {0.5, 0, 0});
  EXPECT_DOUBLE_EQ(d.x, -1.0);  // through the boundary
  const Vec3 e = box.minimum_image({3.0, 0, 0}, {1.0, 0, 0});
  EXPECT_DOUBLE_EQ(e.x, 2.0);
}

TEST(Box, VolumeAndContains) {
  const Box box({-1, -1, -1}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(box.volume(), 2.0 * 3.0 * 4.0);
  EXPECT_TRUE(box.contains({0, 0, 0}));
  EXPECT_FALSE(box.contains({1.5, 0, 0}));
}

// ------------------------------------------------------------- Lattice ----

TEST(Lattice, FccCountsAndSpacing) {
  Box box;
  const Atoms atoms = make_fcc(3.615, 3, 3, 3, 0, box);
  EXPECT_EQ(atoms.nlocal, 4 * 27);
  EXPECT_DOUBLE_EQ(box.hi.x, 3 * 3.615);
  // Nearest-neighbor distance in fcc is a/sqrt(2).
  double min_r = 1e9;
  for (int i = 1; i < atoms.nlocal; ++i) {
    min_r = std::min(min_r,
                     box.minimum_image(atoms.x[static_cast<std::size_t>(i)],
                                       atoms.x[0]).norm());
  }
  EXPECT_NEAR(min_r, 3.615 / std::sqrt(2.0), 1e-9);
}

TEST(Lattice, WaterCompositionAndBondLengths) {
  Rng rng(5);
  Box box;
  const Atoms atoms = make_water_like(3, 0.0334, 0.97, rng, box);
  EXPECT_EQ(atoms.nlocal, 27 * 3);
  int n_o = 0, n_h = 0;
  for (int i = 0; i < atoms.nlocal; ++i) {
    (atoms.type[static_cast<std::size_t>(i)] == 0 ? n_o : n_h) += 1;
  }
  EXPECT_EQ(n_o, 27);
  EXPECT_EQ(n_h, 54);
  // Every O is followed by its two H at r0.
  for (int m = 0; m < 27; ++m) {
    const int o = 3 * m;
    for (int k = 1; k <= 2; ++k) {
      const double r =
          box.minimum_image(atoms.x[static_cast<std::size_t>(o + k)],
                            atoms.x[static_cast<std::size_t>(o)]).norm();
      EXPECT_NEAR(r, 0.97, 1e-9);
    }
  }
}

// ------------------------------------------------------------ Neighbor ----

class NeighborVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(NeighborVsBruteForce, CellListMatches) {
  const auto [natoms, cutoff, full] = GetParam();
  Rng rng(natoms + static_cast<int>(cutoff * 10));
  const Box box({0, 0, 0}, {14, 14, 14});
  Atoms atoms = make_random_gas(natoms, box, 0, rng);
  // Add periodic ghosts via a throwaway Sim-less build: replicate near faces.
  // Simplest correct route: use Sim's ghost builder through a tiny LJ run.
  auto pair = std::make_shared<PairLJ>(1, cutoff);
  pair->set_pair(0, 0, 1e-6, 1.0);
  Sim sim(box, std::move(atoms), {1.0}, pair, {.skin = 0.5});
  sim.setup();

  NeighborList list({cutoff, 0.0, full});
  list.build(sim.atoms(), box);
  const auto ref = brute_force_neighbors(sim.atoms(), cutoff, full);

  ASSERT_EQ(list.nlocal_built(), sim.atoms().nlocal);
  for (int i = 0; i < sim.atoms().nlocal; ++i) {
    auto got = list.neighbors(i);
    auto want = ref[static_cast<std::size_t>(i)];
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "atom " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NeighborVsBruteForce,
    ::testing::Values(std::tuple{20, 3.0, true}, std::tuple{20, 3.0, false},
                      std::tuple{100, 2.5, true}, std::tuple{100, 4.0, false},
                      std::tuple{250, 3.5, true},
                      std::tuple{250, 5.0, false}));

TEST(Neighbor, AppendBinnedGhostsMatchFullRebin) {
  // Satellite of ISSUE 4: the staged overlap pattern — a locals-only
  // build_centers(reset) pass, ghosts appended to the atom arrays, then a
  // build_centers(append) pass — must give every center the same list as
  // a monolithic build over the final atom set, even though the append
  // pass reuses the locals-only cell grid and clamp-bins the new ghosts
  // (many of which lie outside that grid's extent) into its edge cells.
  Rng rng(133);
  const Box box({0, 0, 0}, {14, 14, 14});
  Atoms atoms = make_random_gas(180, box, 0, rng);
  auto pair = std::make_shared<PairLJ>(1, 3.5);
  pair->set_pair(0, 0, 1e-6, 1.0);
  Sim sim(box, std::move(atoms), {1.0}, pair, {.skin = 0.5});
  sim.setup();  // wraps locals + builds ghosts

  // Locals-only snapshot (the overlap engine sees no ghosts yet).
  Atoms staged;
  for (int i = 0; i < sim.atoms().nlocal; ++i) {
    staged.add_local(sim.atoms().x[static_cast<std::size_t>(i)], {0, 0, 0},
                     0, i);
  }
  std::vector<int> interior, boundary;
  for (int i = 0; i < staged.nlocal; ++i) {
    (i % 3 == 0 ? boundary : interior).push_back(i);
  }

  NeighborList list({3.5, 0.5, true});
  list.build_centers(staged, box, interior, /*reset=*/true);
  // Ghosts land; the append pass bins only the new range.
  for (int g = 0; g < sim.atoms().nghost; ++g) {
    const std::size_t idx =
        static_cast<std::size_t>(sim.atoms().nlocal + g);
    staged.add_ghost(sim.atoms().x[idx], 0, sim.atoms().tag[idx],
                     sim.atoms().ghost_parent[static_cast<std::size_t>(g)],
                     sim.atoms().ghost_shift[static_cast<std::size_t>(g)]);
  }
  list.build_centers(staged, box, boundary, /*reset=*/false);
  // Interior lists were built before the ghosts existed; the engine only
  // ever does this for true interior centers, but for the comparison
  // rebuild them now against the appended grid too.
  list.build_centers(staged, box, interior, /*reset=*/false);

  NeighborList full({3.5, 0.5, true});
  full.build(staged, box);
  for (int i = 0; i < staged.nlocal; ++i) {
    auto got = list.neighbors(i);
    auto want = full.neighbors(i);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "center " << i;
  }
}

TEST(Neighbor, FccCoordinationNumber) {
  // Counting neighbors within 1.1 * nn distance must give 12 for fcc.
  Box box;
  Atoms atoms = make_fcc(3.615, 3, 3, 3, 0, box);
  const double rc = 1.1 * 3.615 / std::sqrt(2.0);
  auto pair = std::make_shared<PairLJ>(1, rc);
  pair->set_pair(0, 0, 1e-9, 1.0);
  Sim sim(box, std::move(atoms), {kMassCu}, pair, {.skin = 0.3});
  sim.setup();
  NeighborList list({rc, 0.0, true});
  list.build(sim.atoms(), box);
  for (int i = 0; i < sim.atoms().nlocal; ++i) {
    EXPECT_EQ(list.neighbors(i).size(), 12u) << i;
  }
}

TEST(Neighbor, HalfListCountsEachPairOnce) {
  Rng rng(77);
  const Box box({0, 0, 0}, {12, 12, 12});
  Atoms atoms = make_random_gas(60, box, 0, rng);
  auto pair = std::make_shared<PairLJ>(1, 3.0);
  pair->set_pair(0, 0, 1e-9, 1.0);
  Sim sim(box, std::move(atoms), {1.0}, pair, {.skin = 0.4});
  sim.setup();

  NeighborList full({3.0, 0.0, true});
  NeighborList half({3.0, 0.0, false});
  full.build(sim.atoms(), box);
  half.build(sim.atoms(), box);
  // Each physical pair appears twice in the full list (once per local owner,
  // counting ghost appearances mapped back to owners) and once in the half
  // list; with periodic ghosts the global invariant is
  //   sum_full = 2 * sum_half.
  EXPECT_EQ(full.total_entries(), 2 * half.total_entries());
}

// ------------------------------------------------ force field validation ----

/// Helper: total PE and per-atom forces of a configuration.
struct Evaluated {
  double pe;
  std::vector<Vec3> forces;
};

Evaluated evaluate(const Box& box, const Atoms& atoms,
                   const std::vector<double>& masses,
                   const std::shared_ptr<Pair>& pair) {
  Sim sim(box, atoms, masses, pair, {.skin = 0.5});
  sim.setup();
  Evaluated out;
  out.pe = sim.pe();
  out.forces.assign(sim.atoms().f.begin(),
                    sim.atoms().f.begin() + sim.atoms().nlocal);
  return out;
}

/// Central-difference force check: F = -dU/dx.
void expect_forces_match_gradient(const Box& box, const Atoms& atoms,
                                  const std::vector<double>& masses,
                                  const std::shared_ptr<Pair>& pair,
                                  double tol) {
  const Evaluated base = evaluate(box, atoms, masses, pair);
  const double h = 1e-6;
  for (int i = 0; i < std::min(atoms.nlocal, 6); ++i) {
    for (int d = 0; d < 3; ++d) {
      Atoms ap = atoms;
      Atoms am = atoms;
      ap.x[static_cast<std::size_t>(i)][d] += h;
      am.x[static_cast<std::size_t>(i)][d] -= h;
      const double up = evaluate(box, ap, masses, pair).pe;
      const double um = evaluate(box, am, masses, pair).pe;
      const double fd = -(up - um) / (2 * h);
      EXPECT_NEAR(base.forces[static_cast<std::size_t>(i)][d], fd, tol)
          << "atom " << i << " dim " << d;
    }
  }
}

TEST(PairLJ, TwoAtomAnalytic) {
  // Minimum of LJ at r = 2^(1/6) sigma with U = -epsilon (modulo shift).
  const double sigma = 2.0, eps = 0.5, rc = 8.0;
  auto pair = std::make_shared<PairLJ>(1, rc);
  pair->set_pair(0, 0, eps, sigma);
  const double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;
  EXPECT_NEAR(pair->pair_energy(0, 0, rmin),
              -eps - pair->pair_energy(0, 0, rc - 1e-9) +
                  pair->pair_energy(0, 0, rc - 1e-9),
              0.02);  // shift is small at rc = 4 sigma
  EXPECT_DOUBLE_EQ(pair->pair_energy(0, 0, rc + 0.1), 0.0);

  Box box({0, 0, 0}, {20, 20, 20});
  Atoms atoms;
  atoms.add_local({5, 5, 5}, {0, 0, 0}, 0, 0);
  atoms.add_local({5 + rmin, 5, 5}, {0, 0, 0}, 0, 1);
  const auto ev = evaluate(box, atoms, {1.0}, pair);
  // At the minimum the force vanishes.
  EXPECT_NEAR(ev.forces[0].x, 0.0, 1e-9);
  EXPECT_NEAR(ev.forces[1].x, 0.0, 1e-9);
}

TEST(PairLJ, ForcesMatchGradient) {
  Rng rng(3);
  const Box box({0, 0, 0}, {12, 12, 12});
  Atoms atoms = make_random_gas(40, box, 0, rng);
  auto pair = std::make_shared<PairLJ>(1, 3.0);
  pair->set_pair(0, 0, 0.01, 2.2);
  expect_forces_match_gradient(box, atoms, {1.0}, pair, 1e-6);
}

TEST(PairLJ, NewtonThirdLawTotalForceZero) {
  Rng rng(4);
  const Box box({0, 0, 0}, {12, 12, 12});
  Atoms atoms = make_random_gas(80, box, 0, rng);
  auto pair = std::make_shared<PairLJ>(1, 3.5);
  pair->set_pair(0, 0, 0.01, 2.0);
  const auto ev = evaluate(box, atoms, {1.0}, pair);
  Vec3 total{0, 0, 0};
  double fmax = 0.0;
  for (const auto& f : ev.forces) {
    total += f;
    fmax = std::max(fmax, f.norm());
  }
  // A random gas contains nearly-overlapping pairs with enormous LJ forces;
  // the cancellation is exact analytically, so the residual must be pure
  // floating-point roundoff relative to the largest force.
  const double tol = fmax * 1e-12 * atoms.nlocal;
  EXPECT_NEAR(total.x, 0.0, tol);
  EXPECT_NEAR(total.y, 0.0, tol);
  EXPECT_NEAR(total.z, 0.0, tol);
}

TEST(PairMorse, ForcesMatchGradient) {
  Rng rng(5);
  const Box box({0, 0, 0}, {12, 12, 12});
  Atoms atoms = make_random_gas(30, box, 0, rng);
  auto pair = std::make_shared<PairMorse>(1, 4.0);
  pair->set_pair(0, 0, 0.4, 1.7, 1.5);
  expect_forces_match_gradient(box, atoms, {1.0}, pair, 1e-6);
}

TEST(PairMorse, MinimumAtR0) {
  auto pair = std::make_shared<PairMorse>(1, 6.0);
  pair->set_pair(0, 0, 1.0, 2.0, 1.2);
  const double u0 = pair->pair_energy(0, 0, 1.2);
  EXPECT_LT(u0, pair->pair_energy(0, 0, 1.1));
  EXPECT_LT(u0, pair->pair_energy(0, 0, 1.3));
}

TEST(PairEam, ForcesMatchGradient) {
  Box box;
  // 3x3x3 cells: the box (10.8 A) must exceed cutoff + skin (7.5 A).
  Atoms atoms = make_fcc(3.61, 3, 3, 3, 0, box);
  // Rattle the lattice so forces are non-trivial.
  Rng rng(6);
  for (auto& x : atoms.x) {
    x += Vec3{rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1),
              rng.uniform(-0.1, 0.1)};
  }
  auto pair = std::make_shared<PairEamSC>();
  expect_forces_match_gradient(box, atoms, {kMassCu}, pair, 5e-6);
}

TEST(PairEam, CohesiveEnergyReasonable) {
  // Sutton-Chen Cu cohesive energy should be in the ballpark of a few eV
  // per atom (experimental ~3.5 eV); sign and magnitude sanity check.
  Box box;
  Atoms atoms = make_fcc(3.61, 3, 3, 3, 0, box);
  auto pair = std::make_shared<PairEamSC>();
  const auto ev = evaluate(box, atoms, {kMassCu}, pair);
  const double per_atom = ev.pe / atoms.nlocal;
  EXPECT_LT(per_atom, -1.0);
  EXPECT_GT(per_atom, -10.0);
}

TEST(PairEam, SwitchIsSmooth) {
  PairEamSC pair;
  const auto& p = pair.params();
  EXPECT_DOUBLE_EQ(pair.switch_fn(p.r_on), 1.0);
  EXPECT_DOUBLE_EQ(pair.switch_fn(p.cutoff), 0.0);
  EXPECT_DOUBLE_EQ(pair.switch_deriv(p.r_on), 0.0);
  EXPECT_DOUBLE_EQ(pair.switch_deriv(p.cutoff), 0.0);
  // Derivative consistent with finite difference in the switch window.
  const double r = 0.5 * (p.r_on + p.cutoff);
  const double h = 1e-7;
  const double fd = (pair.switch_fn(r + h) - pair.switch_fn(r - h)) / (2 * h);
  EXPECT_NEAR(pair.switch_deriv(r), fd, 1e-6);
}

TEST(PairWaterRef, ForcesMatchGradient) {
  Rng rng(8);
  Box box;
  // 27 molecules give a 9.3 A box, clearing the 6.5 A halo.
  Atoms atoms = make_water_like(3, 0.0334, 0.97, rng, box);
  auto pair = std::make_shared<PairWaterRef>();
  expect_forces_match_gradient(box, atoms, {kMassO, kMassH}, pair, 1e-5);
}

TEST(PairWaterRef, OhWellNearR0) {
  PairWaterRef pair;
  double u_min, du_min, u_off, du_off;
  pair.pair_u_du(0, 1, 0.97, u_min, du_min);
  pair.pair_u_du(0, 1, 1.4, u_off, du_off);
  EXPECT_LT(u_min, u_off);
  EXPECT_NEAR(du_min, 0.0, 1e-9);  // minimum of the Morse well
}

// ------------------------------------------------------------- dynamics ----

TEST(Sim, NveConservesEnergyLJ) {
  Rng rng(12);
  Box box;
  Atoms atoms = make_fcc(4.4, 3, 3, 3, 0, box);
  thermalize(atoms, {40.0}, 60.0, rng);
  auto pair = std::make_shared<PairLJ>(1, 8.0);
  pair->set_pair(0, 0, 0.0104, 3.4);  // argon-ish
  Sim sim(box, std::move(atoms), {40.0}, pair, {.dt_fs = 2.0, .skin = 1.0});
  sim.setup();
  const double e0 = sim.thermo().total();
  sim.run(250);
  const double e1 = sim.thermo().total();
  EXPECT_NEAR(e1, e0, std::fabs(e0) * 1e-4 + 1e-4);
}

TEST(Sim, NveConservesEnergyEam) {
  Rng rng(13);
  Box box;
  Atoms atoms = make_fcc(3.61, 3, 3, 3, 0, box);
  thermalize(atoms, {kMassCu}, 100.0, rng);
  auto pair = std::make_shared<PairEamSC>();
  Sim sim(box, std::move(atoms), {kMassCu}, pair, {.dt_fs = 1.0, .skin = 1.0});
  sim.setup();
  const double e0 = sim.thermo().total();
  sim.run(200);
  EXPECT_NEAR(sim.thermo().total(), e0, std::fabs(e0) * 2e-4);
}

TEST(Sim, RebuildPolicyKeepsTrajectoryConsistent) {
  // Same initial state, different rebuild cadence: trajectories must agree
  // (the skin guarantees no interaction is missed between rebuilds).
  Rng rng(14);
  Box box;
  Atoms atoms = make_fcc(4.4, 2, 2, 2, 0, box);
  thermalize(atoms, {40.0}, 40.0, rng);

  auto make_sim = [&](int rebuild_every) {
    auto pair = std::make_shared<PairLJ>(1, 6.0);
    pair->set_pair(0, 0, 0.0104, 3.4);
    return Sim(box, atoms, {40.0}, pair,
               {.dt_fs = 2.0, .skin = 2.0, .rebuild_every = rebuild_every});
  };
  Sim every_step = make_sim(1);
  Sim every_25 = make_sim(25);
  every_step.run(60);
  every_25.run(60);
  for (int i = 0; i < every_step.atoms().nlocal; ++i) {
    // Positions may differ by a box vector (wrapping happens at rebuilds),
    // so compare through the minimum image.
    const Vec3 d = box.minimum_image(
        every_step.atoms().x[static_cast<std::size_t>(i)],
        every_25.atoms().x[static_cast<std::size_t>(i)]);
    EXPECT_LT(d.norm(), 1e-9) << i;
    const Vec3 dv = every_step.atoms().v[static_cast<std::size_t>(i)] -
                    every_25.atoms().v[static_cast<std::size_t>(i)];
    EXPECT_LT(dv.norm(), 1e-9) << i;
  }
}

TEST(Sim, AutoSkinResolvesToLargestAdmissible) {
  // SimConfig::skin < 0 = auto (ISSUE 5 satellite): largest skin the
  // periodic cell admits (2*(rcut+skin) <= shortest box length), capped at
  // the paper's 2 A, and the resolved trajectory equals an explicit-skin
  // run.
  Rng rng(15);
  Box box;
  Atoms atoms = make_fcc(4.4, 2, 2, 2, 0, box);  // 8.8 A cube
  thermalize(atoms, {40.0}, 40.0, rng);
  auto make_sim = [&](double rcut, double skin) {
    auto pair = std::make_shared<PairLJ>(1, rcut);
    pair->set_pair(0, 0, 0.0104, 3.4);
    return Sim(box, atoms, {40.0}, pair,
               {.dt_fs = 2.0, .skin = skin, .rebuild_every = 10});
  };
  // 8.8 / 2 - 3.5 = 0.9 admissible; under the 2 A cap.
  Sim auto_skin = make_sim(3.5, -1.0);
  EXPECT_NEAR(auto_skin.config().skin, 0.9, 1e-12);
  // A roomy cutoff hits the 2 A cap; an oversized one floors at 0.
  EXPECT_NEAR(make_sim(2.0, -1.0).config().skin, 2.0, 1e-12);
  EXPECT_NEAR(make_sim(4.5, -1.0).config().skin, 0.0, 1e-12);

  Sim explicit_skin = make_sim(3.5, 0.9);
  auto_skin.run(40);
  explicit_skin.run(40);
  for (int i = 0; i < auto_skin.atoms().nlocal; ++i) {
    const Vec3 d = box.minimum_image(
        auto_skin.atoms().x[static_cast<std::size_t>(i)],
        explicit_skin.atoms().x[static_cast<std::size_t>(i)]);
    EXPECT_LT(d.norm(), 1e-12) << i;
  }
}

TEST(Sim, LangevinEquilibratesTemperature) {
  Rng rng(15);
  Box box;
  Atoms atoms = make_fcc(4.5, 3, 3, 3, 0, box);
  thermalize(atoms, {40.0}, 10.0, rng);
  auto pair = std::make_shared<PairLJ>(1, 6.0);
  pair->set_pair(0, 0, 0.0104, 3.4);
  Sim sim(box, std::move(atoms), {40.0}, pair, {.dt_fs = 2.0});
  sim.set_thermostat(std::make_unique<LangevinThermostat>(120.0, 0.02, 99));
  sim.run(600);
  // Average over a window to beat fluctuation noise.
  OnlineStats temps;
  for (int i = 0; i < 200; ++i) {
    sim.step();
    temps.add(sim.thermo().temperature);
  }
  EXPECT_NEAR(temps.mean(), 120.0, 18.0);
}

TEST(Sim, BerendsenDrivesTowardTarget) {
  Rng rng(16);
  Box box;
  Atoms atoms = make_fcc(4.5, 2, 2, 2, 0, box);
  thermalize(atoms, {40.0}, 300.0, rng);
  auto pair = std::make_shared<PairLJ>(1, 6.0);
  pair->set_pair(0, 0, 0.0104, 3.4);
  Sim sim(box, std::move(atoms), {40.0}, pair, {.dt_fs = 2.0});
  const double t0 = 50.0;
  sim.set_thermostat(std::make_unique<BerendsenThermostat>(t0, 100.0));
  sim.run(400);
  EXPECT_LT(std::fabs(sim.thermo().temperature - t0), 30.0);
}

TEST(Thermo, TemperatureOfKnownVelocities) {
  Atoms atoms;
  // One atom, v^2 chosen so KE = 1.5 kB T at T = 100 K.
  const double m = 10.0;
  const double v2 = 3.0 * kBoltzmann * 100.0 / (m * kMvv2e);
  atoms.add_local({0, 0, 0}, {std::sqrt(v2), 0, 0}, 0, 0);
  const double ke = kinetic_energy(atoms, {m});
  EXPECT_NEAR(temperature_of(ke, 1), 100.0, 1e-9);
}

TEST(Thermo, ThermalizeHitsTargetOnAverage) {
  Rng rng(21);
  Box box;
  Atoms atoms = make_fcc(4.0, 6, 6, 6, 0, box);
  thermalize(atoms, {30.0}, 250.0, rng);
  const double ke = kinetic_energy(atoms, {30.0});
  // sigma(T) = T sqrt(2 / 3N) ~ 6.9 K for 864 atoms; allow ~3.5 sigma plus
  // the ~0.1% COM-removal bias.
  EXPECT_NEAR(temperature_of(ke, atoms.nlocal), 250.0, 25.0);
  // No center-of-mass drift.
  Vec3 p{0, 0, 0};
  for (int i = 0; i < atoms.nlocal; ++i) {
    p += atoms.v[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(p.norm(), 0.0, 1e-10);
}

// ------------------------------------------------------------------ RDF ----

TEST(Rdf, IdealGasIsFlatAtOne) {
  Rng rng(31);
  const Box box({0, 0, 0}, {20, 20, 20});
  RdfAccumulator rdf(0, 0, 8.0, 40);
  for (int frame = 0; frame < 20; ++frame) {
    const Atoms atoms = make_random_gas(300, box, 0, rng);
    rdf.add_frame(atoms, box);
  }
  const auto g = rdf.result();
  // Skip the first bins (few counts); the rest must hover around 1.
  for (std::size_t b = 10; b < g.size(); ++b) {
    EXPECT_NEAR(g[b].g, 1.0, 0.15) << "bin " << b;
  }
}

TEST(Rdf, FccFirstPeakAtNearestNeighbor) {
  Box box;
  const Atoms atoms = make_fcc(3.615, 4, 4, 4, 0, box);
  RdfAccumulator rdf(0, 0, 6.0, 120);
  rdf.add_frame(atoms, box);
  const auto g = rdf.result();
  // Locate the first non-zero peak.
  std::size_t peak = 0;
  for (std::size_t b = 0; b < g.size(); ++b) {
    if (g[b].g > 1.0) {
      peak = b;
      break;
    }
  }
  EXPECT_NEAR(g[peak].r, 3.615 / std::sqrt(2.0), 0.1);
}

TEST(Rdf, MaxDeviationOfIdenticalCurvesIsZero) {
  Box box;
  const Atoms atoms = make_fcc(3.615, 3, 3, 3, 0, box);
  RdfAccumulator a(0, 0, 5.0, 50), b(0, 0, 5.0, 50);
  a.add_frame(atoms, box);
  b.add_frame(atoms, box);
  EXPECT_DOUBLE_EQ(rdf_max_deviation(a.result(), b.result()), 0.0);
}

}  // namespace
}  // namespace dpmd::md
