// Parameterized property sweeps across modules: invariants that must hold
// for *every* configuration in a family, not just a hand-picked instance.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "comm/geometry.hpp"
#include "comm/halo.hpp"
#include "core/inference.hpp"
#include "core/pair_deepmd.hpp"
#include "md/ghosts.hpp"
#include "md/lattice.hpp"
#include "md/pair_lj.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "md/units.hpp"
#include "tofu/netsim.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

// ---------------------------------------------------------- DP symmetry ----

class DpSymmetrySweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DpSymmetrySweep, EnergyInvariants) {
  const auto [ntypes, seed] = GetParam();
  dp::ModelConfig cfg;
  cfg.ntypes = ntypes;
  cfg.descriptor.rcut = 4.0;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel.assign(static_cast<std::size_t>(ntypes), 32);
  cfg.descriptor.emb_widths = {6, 12};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {16, 16};
  auto model = std::make_shared<dp::DPModel>(cfg);
  Rng rng(seed);
  model->init_random(rng);

  const md::Box box({0, 0, 0}, {10, 10, 10});
  md::Atoms atoms;
  for (int i = 0; i < 18; ++i) {
    atoms.add_local({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                     rng.uniform(0.0, 10.0)},
                    {0, 0, 0}, i % ntypes, i);
  }

  const auto energy_of = [&](md::Atoms a) {
    md::build_periodic_ghosts(a, box, cfg.descriptor.rcut);
    md::NeighborList list({cfg.descriptor.rcut, 0.0, true});
    list.build(a, box);
    dp::EvalOptions opts;
    opts.compressed = false;
    dp::PairDeepMD pair(model, opts);
    a.zero_forces();
    return pair.compute(a, list).pe;
  };

  const double e0 = energy_of(atoms);

  // Translation (with wrap).
  md::Atoms shifted = atoms;
  for (auto& x : shifted.x) {
    x += Vec3{2.3, -1.1, 4.4};
    box.wrap(x);
  }
  EXPECT_NEAR(energy_of(shifted), e0, 1e-9);

  // Permutation (cyclic rotation of atom order).
  md::Atoms perm;
  for (int i = 0; i < atoms.nlocal; ++i) {
    const int j = (i + 5) % atoms.nlocal;
    perm.add_local(atoms.x[static_cast<std::size_t>(j)], {0, 0, 0},
                   atoms.type[static_cast<std::size_t>(j)], i);
  }
  EXPECT_NEAR(energy_of(perm), e0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSeeds, DpSymmetrySweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(101u, 202u, 303u)));

// ------------------------------------------------- precision degradation ----

class PrecisionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrecisionSweep, Fp32ForceErrorBounded) {
  const uint64_t seed = GetParam();
  dp::ModelConfig cfg;
  cfg.ntypes = 1;
  cfg.descriptor.rcut = 4.0;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel = {32};
  cfg.descriptor.emb_widths = {6, 12};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {16, 16};
  auto model = std::make_shared<dp::DPModel>(cfg);
  Rng rng(seed);
  model->init_random(rng);

  md::Box box({0, 0, 0}, {10, 10, 10});
  md::Atoms atoms;
  for (int i = 0; i < 20; ++i) {
    atoms.add_local({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                     rng.uniform(0.0, 10.0)},
                    {0, 0, 0}, 0, i);
  }
  md::build_periodic_ghosts(atoms, box, 4.0);
  md::NeighborList list({4.0, 0.0, true});
  list.build(atoms, box);

  dp::AtomEnv env;
  std::vector<Vec3> d64, d32;
  dp::EvalOptions o64, o32;
  o64.compressed = o32.compressed = false;
  o64.precision = dp::Precision::Double;
  o32.precision = dp::Precision::MixFp32;
  dp::DPEvaluator e64(model, o64), e32(model, o32);
  for (int i = 0; i < atoms.nlocal; ++i) {
    dp::build_env(atoms, list, i, cfg.descriptor, 1, env);
    const double v64 = e64.evaluate_atom(env, d64);
    const double v32 = e32.evaluate_atom(env, d32);
    EXPECT_NEAR(v32, v64, 1e-4 * std::max(1.0, std::fabs(v64)));
    for (std::size_t k = 0; k < d64.size(); ++k) {
      EXPECT_LT((d32[k] - d64[k]).norm(),
                1e-3 * std::max(1.0, d64[k].norm()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------- halo sweeps ----

class HaloGridSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HaloGridSweep, ThreeStageAlwaysMatchesOracle) {
  const auto [gx, gy, gz] = GetParam();
  const simmpi::CartGrid grid(gx, gy, gz);
  const Vec3 sub{20.0 / gx, 20.0 / gy, 20.0 / gz};
  const md::Box global({0, 0, 0}, {20, 20, 20});
  const double rcut = 3.0;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    const auto c = grid.coords_of(rank.rank());
    comm::LocalDomain dom;
    dom.sub_box = md::Box({c[0] * sub.x, c[1] * sub.y, c[2] * sub.z},
                          {(c[0] + 1) * sub.x, (c[1] + 1) * sub.y,
                           (c[2] + 1) * sub.z});
    Rng rng(77 + static_cast<uint64_t>(rank.rank()));
    for (int i = 0; i < 12; ++i) {
      comm::HaloAtom a;
      a.x = rng.uniform(dom.sub_box.lo.x, dom.sub_box.hi.x);
      a.y = rng.uniform(dom.sub_box.lo.y, dom.sub_box.hi.y);
      a.z = rng.uniform(dom.sub_box.lo.z, dom.sub_box.hi.z);
      a.tag = rank.rank() * 1000 + i;
      dom.locals.push_back(a);
    }
    const auto ghosts =
        comm::exchange_three_stage(rank, grid, global, dom, rcut);
    const auto expected =
        comm::expected_ghosts_bruteforce(rank, global, dom, rcut);
    EXPECT_EQ(comm::ghost_keys(ghosts), comm::ghost_keys(expected));
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, HaloGridSweep,
                         ::testing::Values(std::tuple{2, 2, 2},
                                           std::tuple{4, 2, 1},
                                           std::tuple{3, 3, 1},
                                           std::tuple{1, 2, 4}));

// ------------------------------------------------------- netsim scaling ----

class NetsimScalingSweep : public ::testing::TestWithParam<int> {};

TEST_P(NetsimScalingSweep, CostMonotoneInMessageCount) {
  const int base_msgs = GetParam();
  const tofu::Torus topo(4, 4, 4);
  const tofu::MachineParams mp;
  const auto plan_with = [&](int n) {
    tofu::CommPlan plan;
    tofu::Phase ph;
    for (int i = 0; i < n; ++i) {
      tofu::NetMessage m;
      m.src_node = 0;
      m.dst_node = 1 + i % 7;
      m.bytes = 256;
      m.post_thread = i % 4;
      ph.messages.push_back(m);
    }
    plan.phases.push_back(ph);
    return plan;
  };
  const double t1 = tofu::evaluate(plan_with(base_msgs), mp, topo).total_s;
  const double t2 = tofu::evaluate(plan_with(2 * base_msgs), mp, topo).total_s;
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 2.5 * t1 + 1e-6);  // sub-linear thanks to thread/TNI overlap
}

INSTANTIATE_TEST_SUITE_P(Counts, NetsimScalingSweep,
                         ::testing::Values(8, 24, 64, 128));

// ----------------------------------------------------- thermo identities ----

TEST(ThermoProperties, IdealGasPressure) {
  // Nearly non-interacting gas: P V = N kB T within sampling error.
  Rng rng(5);
  const md::Box box({0, 0, 0}, {30, 30, 30});
  md::Atoms atoms = md::make_random_gas(400, box, 0, rng);
  md::thermalize(atoms, {40.0}, 200.0, rng);
  auto pair = std::make_shared<md::PairLJ>(1, 3.0);
  pair->set_pair(0, 0, 1e-9, 1.0);  // epsilon ~ 0: ideal gas
  md::Sim sim(box, std::move(atoms), {40.0}, pair, {.skin = 0.5});
  sim.setup();
  const auto t = sim.thermo();
  const double expected_bar = 400.0 * md::kBoltzmann * t.temperature /
                              box.volume() * md::kEvPerA3ToBar;
  // Overlapping pairs keep a sliver of virial even at epsilon ~ 0; accept
  // a 0.1% residual.
  EXPECT_NEAR(t.pressure, expected_bar, 1e-3 * expected_bar);
}

TEST(ThermoProperties, KineticEnergyAdditivity) {
  Rng rng(6);
  md::Box box;
  md::Atoms atoms = md::make_fcc(4.0, 3, 3, 3, 0, box);
  md::thermalize(atoms, {50.0}, 150.0, rng);
  const double total = md::kinetic_energy(atoms, {50.0});
  // Halving every velocity quarters the kinetic energy.
  for (auto& v : atoms.v) v *= 0.5;
  EXPECT_NEAR(md::kinetic_energy(atoms, {50.0}), total / 4.0, 1e-10);
}

}  // namespace
}  // namespace dpmd
