// End-to-end integration: the distributed DomainEngine (simmpi ranks, real
// halo exchange, migration, Newton-on force return) against the
// single-process md::Sim reference, plus whole-stack MD-with-DP checks.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "comm/domain_engine.hpp"
#include "core/pair_deepmd.hpp"
#include "md/lattice.hpp"
#include "md/pair_lj.hpp"
#include "md/pair_morse.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

struct GlobalSystem {
  md::Box box;
  std::vector<Vec3> x;
  std::vector<Vec3> v;
  std::vector<int> type;
};

GlobalSystem make_gas(int natoms, double box_len, double t_kelvin,
                      double mass, uint64_t seed) {
  GlobalSystem sys;
  sys.box = md::Box::cubic(box_len);
  Rng rng(seed);
  // Rejection-sample a minimum separation: overlapping LJ pairs would
  // catapult atoms across several sub-boxes in one step.
  md::Atoms atoms;
  const double min_sep = 2.9;
  int placed = 0;
  while (placed < natoms) {
    const Vec3 p{rng.uniform(0.0, box_len), rng.uniform(0.0, box_len),
                 rng.uniform(0.0, box_len)};
    bool ok = true;
    for (int i = 0; i < placed && ok; ++i) {
      ok = sys.box.minimum_image(p, atoms.x[static_cast<std::size_t>(i)])
               .norm() >= min_sep;
    }
    if (!ok) continue;
    atoms.add_local(p, {0, 0, 0}, 0, placed++);
  }
  md::thermalize(atoms, {mass}, t_kelvin, rng);
  sys.x = atoms.x;
  sys.v.assign(atoms.v.begin(), atoms.v.begin() + atoms.nlocal);
  sys.type.assign(atoms.type.begin(), atoms.type.begin() + atoms.nlocal);
  return sys;
}

std::shared_ptr<md::PairLJ> make_lj(double rc) {
  auto pair = std::make_shared<md::PairLJ>(1, rc);
  pair->set_pair(0, 0, 0.0104, 3.4);
  return pair;
}

/// Single-process reference trajectory.
md::Sim reference_sim(const GlobalSystem& sys, std::shared_ptr<md::Pair> pair,
                      double mass, double dt) {
  md::Atoms atoms;
  for (std::size_t i = 0; i < sys.x.size(); ++i) {
    atoms.add_local(sys.x[i], sys.v[i], sys.type[i],
                    static_cast<std::int64_t>(i));
  }
  return md::Sim(sys.box, std::move(atoms), {mass}, std::move(pair),
                 {.dt_fs = dt, .skin = 1.0, .rebuild_every = 1});
}

TEST(DomainEngine, MatchesSingleProcessTrajectory) {
  const GlobalSystem sys = make_gas(160, 24.0, 60.0, 40.0, 31);
  const double rc = 5.0;
  const double dt = 1.0;
  const int steps = 20;

  md::Sim ref = reference_sim(sys, make_lj(rc), 40.0, dt);
  ref.run(steps);

  const simmpi::CartGrid grid(2, 2, 2);
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, {40.0}, make_lj(rc),
                              {.dt_fs = dt});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(steps);

    const auto all = engine.gather_all();
    ASSERT_EQ(all.size(), sys.x.size());
    for (const auto& atom : all) {
      const Vec3 d = sys.box.minimum_image(
          atom.x, ref.atoms().x[static_cast<std::size_t>(atom.tag)]);
      EXPECT_LT(d.norm(), 1e-7) << "tag " << atom.tag;
      const Vec3 dv =
          atom.v - ref.atoms().v[static_cast<std::size_t>(atom.tag)];
      EXPECT_LT(dv.norm(), 1e-8) << "tag " << atom.tag;
    }
  });
}

TEST(DomainEngine, EnergyMatchesReferenceEveryFewSteps) {
  const GlobalSystem sys = make_gas(120, 24.0, 80.0, 40.0, 37);
  const double rc = 5.0;

  md::Sim ref = reference_sim(sys, make_lj(rc), 40.0, 1.0);
  ref.setup();
  std::vector<double> ref_pe;
  for (int block = 0; block < 4; ++block) {
    ref.run(5);
    ref_pe.push_back(ref.pe());
  }

  const simmpi::CartGrid grid(2, 2, 1);
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, {40.0}, make_lj(rc),
                              {.dt_fs = 1.0});
    engine.seed(sys.x, sys.v, sys.type);
    for (int block = 0; block < 4; ++block) {
      engine.run(5);
      const double pe = engine.total_pe();
      EXPECT_NEAR(pe, ref_pe[static_cast<std::size_t>(block)],
                  1e-7 * std::max(1.0, std::fabs(pe)))
          << "block " << block;
    }
  });
}

TEST(DomainEngine, MigrationConservesAtomsAndTags) {
  // Hot gas: atoms cross sub-box boundaries constantly.
  const GlobalSystem sys = make_gas(100, 20.0, 600.0, 10.0, 41);
  const simmpi::CartGrid grid(2, 2, 1);
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    auto pair = std::make_shared<md::PairMorse>(1, 4.0);
    pair->set_pair(0, 0, 0.05, 1.5, 2.5);
    comm::DomainEngine engine(rank, grid, sys.box, {10.0}, pair,
                              {.dt_fs = 2.0});
    engine.seed(sys.x, sys.v, sys.type);
    engine.run(30);

    const auto all = engine.gather_all();
    ASSERT_EQ(all.size(), 100u);
    std::set<std::int64_t> tags;
    for (const auto& a : all) tags.insert(a.tag);
    EXPECT_EQ(tags.size(), 100u);  // no duplication, no loss
    // Every atom is inside the global box (wrapped by migration).
    for (const auto& a : all) {
      EXPECT_TRUE(sys.box.contains(a.x)) << a.tag;
    }
  });
}

TEST(DomainEngine, ConservesEnergyNve) {
  const GlobalSystem sys = make_gas(150, 26.0, 50.0, 40.0, 43);
  const simmpi::CartGrid grid(2, 1, 1);
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, {40.0}, make_lj(5.0),
                              {.dt_fs = 2.0});
    engine.seed(sys.x, sys.v, sys.type);
    engine.step();  // prime forces
    const double e0 = engine.total_pe() + engine.total_kinetic();
    engine.run(100);
    const double e1 = engine.total_pe() + engine.total_kinetic();
    EXPECT_NEAR(e1, e0, std::fabs(e0) * 5e-4 + 5e-4);
  });
}

TEST(IntegrationDp, TrainedModelSurvivesSaveLoadAndMd) {
  // Whole-stack: random DP -> save -> load -> drive MD; trajectories of the
  // original and reloaded models must be identical.
  dp::ModelConfig cfg;
  cfg.ntypes = 1;
  cfg.descriptor.rcut = 4.5;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel = {48};
  cfg.descriptor.emb_widths = {8, 16};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {24, 24};
  auto model = std::make_shared<dp::DPModel>(cfg);
  Rng rng(47);
  model->init_random(rng);
  const std::string path = "/tmp/dpmd_integration_model.bin";
  model->save(path);
  auto loaded = std::make_shared<dp::DPModel>(dp::DPModel::load(path));

  const auto run_with = [&](std::shared_ptr<const dp::DPModel> m) {
    md::Box box;
    md::Atoms atoms = md::make_fcc(4.2, 3, 3, 3, 0, box);
    Rng vrng(53);
    md::thermalize(atoms, {30.0}, 30.0, vrng);
    auto pair = std::make_shared<dp::PairDeepMD>(m, dp::EvalOptions{});
    md::Sim sim(box, std::move(atoms), {30.0}, pair, {.dt_fs = 0.5});
    sim.run(40);
    return sim.atoms().x;
  };
  const auto x1 = run_with(model);
  const auto x2 = run_with(loaded);
  ASSERT_EQ(x1.size(), x2.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_LT((x1[i] - x2[i]).norm(), 1e-12) << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpmd
