#include <gtest/gtest.h>

#include <cmath>

#include "core/inference.hpp"
#include "core/pair_deepmd.hpp"
#include "core/tflike_dp.hpp"
#include "md/ghosts.hpp"
#include "md/neighbor.hpp"
#include "nn/tflike/ops.hpp"
#include "nn/tflike/session.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

using tflike::Graph;
using tflike::Session;
using tflike::Tensor;
namespace ops = tflike::ops;

Tensor make(int r, int c, std::initializer_list<double> vals) {
  Tensor t(r, c);
  std::copy(vals.begin(), vals.end(), t.data.begin());
  return t;
}

// --------------------------------------------------------------- kernels ----

TEST(TfLikeOps, MatmulAllTransposeModes) {
  const Tensor a = make(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = make(3, 2, {7, 8, 9, 10, 11, 12});

  Tensor out;
  ops::matmul()({&a, &b}, out);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 2);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 154);

  // a^T (3x2) * a (2x3) -> 3x3
  Tensor tn;
  ops::matmul(true, false)({&a, &a}, tn);
  EXPECT_EQ(tn.rows(), 3);
  EXPECT_DOUBLE_EQ(tn.at(0, 0), 1 * 1 + 4 * 4);

  // a (2x3) * a^T-of-(2x3) -> need b as 2x3 too: a * a^T -> 2x2
  Tensor nt;
  ops::matmul(false, true)({&a, &a}, nt);
  EXPECT_EQ(nt.rows(), 2);
  EXPECT_DOUBLE_EQ(nt.at(0, 1), 1 * 4 + 2 * 5 + 3 * 6);
}

TEST(TfLikeOps, MatmulShapeMismatchThrows) {
  const Tensor a = make(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = make(2, 2, {1, 2, 3, 4});
  Tensor out;
  EXPECT_THROW(ops::matmul()({&a, &b}, out), Error);
}

TEST(TfLikeOps, ElementwiseAndBias) {
  const Tensor a = make(1, 3, {1, 2, 3});
  const Tensor b = make(1, 3, {10, 20, 30});
  Tensor out;
  ops::add()({&a, &b}, out);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 33);
  ops::sub()({&b, &a}, out);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 9);
  ops::mul()({&a, &b}, out);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 40);
  ops::scale(0.5)({&b}, out);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 15);

  const Tensor x = make(2, 2, {0, 0, 0, 0});
  const Tensor bias = make(1, 2, {5, 6});
  ops::add_bias()({&x, &bias}, out);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 6);
}

TEST(TfLikeOps, TanhAndGrad) {
  const Tensor x = make(1, 2, {0.3, -0.7});
  Tensor y;
  ops::tanh_op()({&x}, y);
  EXPECT_DOUBLE_EQ(y.at(0, 0), std::tanh(0.3));

  const Tensor dy = make(1, 2, {1.0, 1.0});
  Tensor dx;
  ops::tanh_grad()({&dy, &y}, dx);
  EXPECT_NEAR(dx.at(0, 0), 1.0 - std::tanh(0.3) * std::tanh(0.3), 1e-14);
}

TEST(TfLikeOps, SliceAndConcat) {
  const Tensor x = make(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor cols;
  ops::slice_cols(1, 3)({&x}, cols);
  EXPECT_EQ(cols.cols(), 2);
  EXPECT_DOUBLE_EQ(cols.at(1, 0), 5);

  Tensor rows;
  ops::slice_rows(1, 2)({&x}, rows);
  EXPECT_EQ(rows.rows(), 1);
  EXPECT_DOUBLE_EQ(rows.at(0, 0), 4);

  Tensor cc;
  ops::concat_cols()({&x, &x}, cc);
  EXPECT_EQ(cc.cols(), 6);
  EXPECT_DOUBLE_EQ(cc.at(0, 4), 2);

  Tensor cr;
  ops::concat_rows()({&x, &x}, cr);
  EXPECT_EQ(cr.rows(), 4);
  EXPECT_DOUBLE_EQ(cr.at(3, 2), 6);
}

TEST(TfLikeOps, ReshapeAndReduce) {
  const Tensor x = make(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor r;
  ops::reshape(3, 2)({&x}, r);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_DOUBLE_EQ(r.at(2, 1), 6);

  Tensor s;
  ops::reduce_sum_all()({&x}, s);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 21);
}

// --------------------------------------------------------------- session ----

TEST(TfLikeSession, EvaluatesDag) {
  Graph g;
  const int x = g.placeholder("x");
  const int w = g.constant("w", make(2, 2, {1, 2, 3, 4}));
  const int y = g.op("y", ops::matmul(), {x, w});
  const int z = g.op("z", ops::scale(2.0), {y});

  Session s(g);
  const auto out = s.run({{x, make(1, 2, {1, 1})}}, {z});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].at(0, 0), 8);   // (1+3)*2
  EXPECT_DOUBLE_EQ(out[0].at(0, 1), 12);  // (2+4)*2
}

TEST(TfLikeSession, PrunesUnfetchedSubgraph) {
  Graph g;
  const int x = g.placeholder("x");
  const int used = g.op("used", ops::scale(3.0), {x});
  int unused = x;
  for (int i = 0; i < 20; ++i) {
    unused = g.op("unused" + std::to_string(i), ops::scale(1.0), {unused});
  }
  Session s(g);
  s.run({{x, make(1, 1, {2.0})}}, {used});
  // Only the one needed op must have executed.
  EXPECT_EQ(s.stats().op_executions, 1u);
}

TEST(TfLikeSession, MissingFeedThrows) {
  Graph g;
  const int x = g.placeholder("x");
  const int y = g.op("y", ops::scale(1.0), {x});
  Session s(g);
  EXPECT_THROW(s.run({}, {y}), Error);
}

TEST(TfLikeSession, StatsAccumulateAcrossRuns) {
  Graph g;
  const int x = g.placeholder("x");
  const int y = g.op("y", ops::scale(1.0), {x});
  Session s(g);
  for (int i = 0; i < 5; ++i) s.run({{x, make(1, 1, {1.0})}}, {y});
  EXPECT_EQ(s.stats().runs, 5u);
  EXPECT_EQ(s.stats().op_executions, 5u);
  EXPECT_GT(s.stats().bytes_allocated, 0u);
}

// ------------------------------------------- DP equivalence (key test) ----

dp::ModelConfig tiny_config() {
  dp::ModelConfig cfg;
  cfg.ntypes = 2;
  cfg.descriptor.rcut = 4.0;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel = {24, 24};
  cfg.descriptor.emb_widths = {6, 12};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {24, 24};
  cfg.energy_bias = {0.3, -0.2};
  return cfg;
}

TEST(TfLikeDp, MatchesDirectEvaluatorExactly) {
  // The rewritten kernels and the framework path must agree to roundoff —
  // this is what makes the Fig. 9 "TensorFlow removal" comparison purely
  // about overhead, not numerics.
  auto model = std::make_shared<dp::DPModel>(tiny_config());
  Rng rng(71);
  model->init_random(rng);

  const md::Box box({0, 0, 0}, {10, 10, 10});
  md::Atoms atoms;
  for (int i = 0; i < 24; ++i) {
    atoms.add_local({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                     rng.uniform(0.0, 10.0)},
                    {0, 0, 0}, i % 2, i);
  }
  md::build_periodic_ghosts(atoms, box, 4.0);
  md::NeighborList list({4.0, 0.0, true});
  list.build(atoms, box);

  dp::EvalOptions opts;
  opts.precision = dp::Precision::Double;
  opts.compressed = false;
  dp::DPEvaluator direct(model, opts);
  dp::TfLikeDPEvaluator framework(model);

  dp::AtomEnv env;
  std::vector<Vec3> dedd_direct, dedd_tf;
  for (int i = 0; i < atoms.nlocal; ++i) {
    dp::build_env(atoms, list, i, model->config().descriptor, 2, env);
    const double e_direct = direct.evaluate_atom(env, dedd_direct);
    const double e_tf = framework.evaluate_atom(env, dedd_tf);
    EXPECT_NEAR(e_tf, e_direct, 1e-10) << "atom " << i;
    ASSERT_EQ(dedd_tf.size(), dedd_direct.size());
    for (std::size_t k = 0; k < dedd_tf.size(); ++k) {
      const Vec3 d = dedd_tf[k] - dedd_direct[k];
      EXPECT_LT(d.norm(), 1e-10) << "atom " << i << " nbr " << k;
    }
  }
}

TEST(TfLikeDp, FrameworkExecutesManyOpsPerAtom) {
  // Quantifies the structural overhead: dozens of op dispatches and fresh
  // tensor allocations per atom evaluation vs zero allocations in the
  // direct path.
  auto model = std::make_shared<dp::DPModel>(tiny_config());
  Rng rng(73);
  model->init_random(rng);

  const md::Box box({0, 0, 0}, {10, 10, 10});
  md::Atoms atoms;
  for (int i = 0; i < 8; ++i) {
    atoms.add_local({rng.uniform(2.0, 8.0), rng.uniform(2.0, 8.0),
                     rng.uniform(2.0, 8.0)},
                    {0, 0, 0}, i % 2, i);
  }
  md::build_periodic_ghosts(atoms, box, 4.0);
  md::NeighborList list({4.0, 0.0, true});
  list.build(atoms, box);

  dp::TfLikeDPEvaluator framework(model);
  dp::AtomEnv env;
  std::vector<Vec3> dedd;
  dp::build_env(atoms, list, 0, model->config().descriptor, 2, env);
  framework.evaluate_atom(env, dedd);

  const auto& stats = framework.stats(env.center_type);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_GT(stats.op_executions, 40u);      // the per-run dispatch burden
  EXPECT_GT(stats.bytes_allocated, 1000u);  // fresh intermediates
}

TEST(TfLikeDp, PairAdapterMatchesDirectPair) {
  auto model = std::make_shared<dp::DPModel>(tiny_config());
  Rng rng(79);
  model->init_random(rng);

  const md::Box box({0, 0, 0}, {10, 10, 10});
  md::Atoms atoms;
  for (int i = 0; i < 20; ++i) {
    atoms.add_local({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                     rng.uniform(0.0, 10.0)},
                    {0, 0, 0}, i % 2, i);
  }
  md::build_periodic_ghosts(atoms, box, 4.0);
  md::NeighborList list({4.0, 0.0, true});
  list.build(atoms, box);

  dp::EvalOptions opts;
  opts.compressed = false;
  dp::PairDeepMD direct(model, opts);
  dp::PairDeepMDTf baseline(model);

  md::Atoms a1 = atoms;
  md::Atoms a2 = atoms;
  a1.zero_forces();
  a2.zero_forces();
  const auto r1 = direct.compute(a1, list);
  const auto r2 = baseline.compute(a2, list);
  EXPECT_NEAR(r1.pe, r2.pe, 1e-10);
  EXPECT_NEAR(r1.virial, r2.virial, 1e-9);
  for (int i = 0; i < a1.ntotal(); ++i) {
    const Vec3 d = a1.f[static_cast<std::size_t>(i)] -
                   a2.f[static_cast<std::size_t>(i)];
    EXPECT_LT(d.norm(), 1e-10) << i;
  }
}

}  // namespace
}  // namespace dpmd
