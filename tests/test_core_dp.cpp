#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "core/compression.hpp"
#include "core/descriptor.hpp"
#include "core/inference.hpp"
#include "core/model.hpp"
#include "core/pair_deepmd.hpp"
#include "md/ghosts.hpp"
#include "md/lattice.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "util/random.hpp"

namespace dpmd::dp {
namespace {

/// Small two-type test model (fast but structurally identical to the paper's
/// models: per-type embeddings with Doubled skips, ResNet fitting net).
ModelConfig small_config(int ntypes = 2) {
  ModelConfig cfg;
  cfg.ntypes = ntypes;
  cfg.descriptor.rcut = 4.5;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel.assign(static_cast<std::size_t>(ntypes), 48);
  cfg.descriptor.emb_widths = {8, 16, 32};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {32, 32, 32};
  return cfg;
}

std::shared_ptr<DPModel> small_model(int ntypes = 2, uint64_t seed = 7) {
  auto model = std::make_shared<DPModel>(small_config(ntypes));
  Rng rng(seed);
  model->init_random(rng);
  return model;
}

/// Random two-type configuration with a minimum separation (keeps s within
/// the compression table and forces finite).
md::Atoms random_config(int n, const md::Box& box, int ntypes, Rng& rng,
                        double min_sep = 1.2) {
  md::Atoms atoms;
  int placed = 0;
  int attempts = 0;
  while (placed < n) {
    DPMD_REQUIRE(++attempts < 100000, "cannot place atoms");
    const Vec3 p{rng.uniform(box.lo.x, box.hi.x),
                 rng.uniform(box.lo.y, box.hi.y),
                 rng.uniform(box.lo.z, box.hi.z)};
    bool ok = true;
    for (int i = 0; i < placed; ++i) {
      if (box.minimum_image(p, atoms.x[static_cast<std::size_t>(i)]).norm() <
          min_sep) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    atoms.add_local(p, {0, 0, 0},
                    static_cast<int>(rng.uniform_int(
                        static_cast<uint64_t>(ntypes))),
                    placed);
    ++placed;
  }
  return atoms;
}

struct Evaluated {
  double pe;
  double virial;
  std::vector<Vec3> forces;    // locals, ghost-folded
  std::vector<double> atom_e;  // per-atom energies
};

Evaluated eval_config(const std::shared_ptr<DPModel>& model,
                      const EvalOptions& opts, const md::Box& box,
                      md::Atoms atoms) {
  md::build_periodic_ghosts(atoms, box, model->config().descriptor.rcut);
  md::NeighborList list({model->config().descriptor.rcut, 0.0, true});
  list.build(atoms, box);
  PairDeepMD pair(model, opts);
  atoms.zero_forces();
  const md::ForceResult res = pair.compute(atoms, list);
  for (int g = 0; g < atoms.nghost; ++g) {
    atoms.f[static_cast<std::size_t>(
        atoms.ghost_parent[static_cast<std::size_t>(g)])] +=
        atoms.f[static_cast<std::size_t>(atoms.nlocal + g)];
  }
  Evaluated out;
  out.pe = res.pe;
  out.virial = res.virial;
  out.forces.assign(atoms.f.begin(), atoms.f.begin() + atoms.nlocal);
  EXPECT_TRUE(pair.per_atom_energy(atoms, list, out.atom_e));
  return out;
}

// ------------------------------------------------------- smooth weight ----

TEST(SmoothWeight, PlateauAndCutoff) {
  double s, ds;
  smooth_weight(1.0, 4.0, 2.0, s, ds);
  EXPECT_DOUBLE_EQ(s, 1.0);          // 1/r below r_cs
  EXPECT_DOUBLE_EQ(ds, -1.0);
  smooth_weight(4.0, 4.0, 2.0, s, ds);
  EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_DOUBLE_EQ(ds, 0.0);
  smooth_weight(5.0, 4.0, 2.0, s, ds);
  EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SmoothWeight, ContinuousAtBothJoints) {
  for (const double r0 : {2.0, 4.0}) {
    double s_lo, ds_lo, s_hi, ds_hi;
    smooth_weight(r0 - 1e-9, 4.0, 2.0, s_lo, ds_lo);
    smooth_weight(r0 + 1e-9, 4.0, 2.0, s_hi, ds_hi);
    EXPECT_NEAR(s_lo, s_hi, 1e-7);
    EXPECT_NEAR(ds_lo, ds_hi, 1e-6);
  }
}

TEST(SmoothWeight, DerivativeMatchesFiniteDifference) {
  for (double r = 0.5; r < 4.2; r += 0.1) {
    double s, ds, sp, dsp, sm, dsm;
    smooth_weight(r, 4.0, 2.0, s, ds);
    smooth_weight(r + 1e-7, 4.0, 2.0, sp, dsp);
    smooth_weight(r - 1e-7, 4.0, 2.0, sm, dsm);
    EXPECT_NEAR(ds, (sp - sm) / 2e-7, 1e-5) << "r=" << r;
  }
}

// ------------------------------------------------------ environment mat ----

TEST(EnvMat, SortedByTypeWithOffsets) {
  Rng rng(11);
  const md::Box box({0, 0, 0}, {12, 12, 12});
  md::Atoms atoms = random_config(60, box, 2, rng);
  md::build_periodic_ghosts(atoms, box, 4.5);
  md::NeighborList list({4.5, 0.0, true});
  list.build(atoms, box);

  DescriptorParams params = small_config().descriptor;
  AtomEnv env;
  build_env(atoms, list, 0, params, 2, env);
  ASSERT_EQ(env.type_offset.size(), 3u);
  for (int k = 0; k < env.nnei(); ++k) {
    const int t = env.nbr_type[static_cast<std::size_t>(k)];
    EXPECT_GE(k, env.type_offset[static_cast<std::size_t>(t)]);
    EXPECT_LT(k, env.type_offset[static_cast<std::size_t>(t) + 1]);
    // Types must be non-decreasing along the rows.
    if (k > 0) {
      EXPECT_LE(env.nbr_type[static_cast<std::size_t>(k - 1)], t);
    }
  }
}

TEST(EnvMat, DerivativesMatchFiniteDifference) {
  Rng rng(13);
  const md::Box box({0, 0, 0}, {12, 12, 12});
  md::Atoms atoms = random_config(40, box, 2, rng);
  md::build_periodic_ghosts(atoms, box, 4.5);
  md::NeighborList list({4.5, 0.0, true});
  list.build(atoms, box);

  DescriptorParams params = small_config().descriptor;
  AtomEnv env;
  build_env(atoms, list, 0, params, 2, env);
  ASSERT_GT(env.nnei(), 0);

  const double h = 1e-7;
  for (int k = 0; k < std::min(env.nnei(), 6); ++k) {
    for (int a = 0; a < 3; ++a) {
      Vec3 dp = env.rel[static_cast<std::size_t>(k)];
      Vec3 dm = dp;
      dp[a] += h;
      dm[a] -= h;
      const auto row_of = [&](const Vec3& d) {
        double s, ds;
        smooth_weight(d.norm(), params.rcut, params.rcut_smth, s, ds);
        const double inv_r = 1.0 / d.norm();
        return std::array<double, 4>{s, s * d.x * inv_r, s * d.y * inv_r,
                                     s * d.z * inv_r};
      };
      const auto rp = row_of(dp);
      const auto rm = row_of(dm);
      for (int c = 0; c < 4; ++c) {
        const double fd = (rp[static_cast<std::size_t>(c)] -
                           rm[static_cast<std::size_t>(c)]) / (2 * h);
        EXPECT_NEAR(env.drmat[static_cast<std::size_t>(k) * 12 + c * 3 + a],
                    fd, 1e-5)
            << "nbr " << k << " comp " << c << " dim " << a;
      }
    }
  }
}

// -------------------------------------------------------- compression ----

TEST(Compression, MatchesNetworkInRange) {
  Rng rng(17);
  nn::Mlp<double> net = nn::Mlp<double>::stack(1, {8, 16, 32}, 0);
  net.init_random(rng);
  const auto table =
      CompressedEmbedding::build(net, {0.0, 2.0, 2048});

  nn::MlpCache<double> cache;
  std::vector<double> y(32), g(32), dg(32);
  for (double s = 0.01; s < 2.0; s += 0.0137) {
    double x = s;
    net.forward(&x, y.data(), 1, cache, nn::GemmKind::Auto);
    table.eval(s, g.data(), dg.data());
    for (int c = 0; c < 32; ++c) {
      EXPECT_NEAR(g[static_cast<std::size_t>(c)],
                  y[static_cast<std::size_t>(c)], 1e-8)
          << "s=" << s << " c=" << c;
    }
  }
}

TEST(Compression, DerivativeMatchesNetwork) {
  Rng rng(19);
  nn::Mlp<double> net = nn::Mlp<double>::stack(1, {8, 16}, 0);
  net.init_random(rng);
  const auto table = CompressedEmbedding::build(net, {0.0, 2.0, 1024});

  std::vector<double> g(16), dg(16), gp(16), gm(16), dgu(16);
  for (double s = 0.05; s < 1.95; s += 0.171) {
    table.eval(s, g.data(), dg.data());
    table.eval(s + 1e-6, gp.data(), dgu.data());
    table.eval(s - 1e-6, gm.data(), dgu.data());
    for (int c = 0; c < 16; ++c) {
      const double fd = (gp[static_cast<std::size_t>(c)] -
                         gm[static_cast<std::size_t>(c)]) / 2e-6;
      EXPECT_NEAR(dg[static_cast<std::size_t>(c)], fd, 1e-5);
    }
  }
}

TEST(Compression, LinearExtensionOutOfRange) {
  Rng rng(23);
  nn::Mlp<double> net = nn::Mlp<double>::stack(1, {8, 16}, 0);
  net.init_random(rng);
  const auto table = CompressedEmbedding::build(net, {0.0, 1.0, 256});
  std::vector<double> g_edge(16), dg_edge(16), g_out(16), dg_out(16);
  table.eval(1.0, g_edge.data(), dg_edge.data());
  table.eval(1.1, g_out.data(), dg_out.data());
  for (int c = 0; c < 16; ++c) {
    EXPECT_NEAR(g_out[static_cast<std::size_t>(c)],
                g_edge[static_cast<std::size_t>(c)] +
                    0.1 * dg_edge[static_cast<std::size_t>(c)],
                1e-9);
  }
}

TEST(Compression, EvalRowMatchesScalarEvalEverywhere) {
  // Layout equality (ISSUE 4): the SIMD channel-major eval_row and the
  // scalar reference eval read the same coefficient-major table and must
  // agree across bin interiors, exact bin edges, the clamped low end and
  // the linear extension past s_max — to amplified round-off only (the
  // derivative Horner associates differently).
  Rng rng(29);
  nn::Mlp<double> net = nn::Mlp<double>::stack(1, {8, 16, 24}, 0);
  net.init_random(rng);
  const int m1 = 24;
  const auto table = CompressedEmbedding::build(net, {0.0, 1.5, 64});
  const double width = 1.5 / 64;

  std::vector<double> probes = {-0.3, 0.0,  1e-9, 0.4037, 0.75,
                                1.2,  1.5,  1.9,  2.5};
  for (int bin = 0; bin < 64; bin += 7) {
    probes.push_back(bin * width);          // exact bin edge
    probes.push_back(bin * width + 1e-12);  // just inside
    probes.push_back((bin + 0.5) * width);  // mid-bin
  }

  std::vector<double> g(m1), dg(m1), gr(m1), dgr(m1);
  for (const double s : probes) {
    table.eval(s, g.data(), dg.data());
    table.eval_row(s, gr.data(), dgr.data());
    for (int c = 0; c < m1; ++c) {
      const double gs = std::max(1.0, std::fabs(g[static_cast<std::size_t>(c)]));
      const double ds = std::max(1.0, std::fabs(dg[static_cast<std::size_t>(c)]));
      EXPECT_LT(std::fabs(gr[static_cast<std::size_t>(c)] -
                          g[static_cast<std::size_t>(c)]) / gs,
                1e-13)
          << "s=" << s << " c=" << c;
      EXPECT_LT(std::fabs(dgr[static_cast<std::size_t>(c)] -
                          dg[static_cast<std::size_t>(c)]) / ds,
                1e-12)
          << "s=" << s << " c=" << c;
    }
  }
}

// ---------------------------------------------------------- DP physics ----

class DpForceCheck : public ::testing::TestWithParam<bool> {};

TEST_P(DpForceCheck, ForcesMatchEnergyGradient) {
  const bool compressed = GetParam();
  Rng rng(29);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(32, box, 2, rng);

  EvalOptions opts;
  opts.precision = Precision::Double;
  opts.compressed = compressed;
  opts.compression_bins = 4096;

  const Evaluated base = eval_config(model, opts, box, atoms);
  const double h = 1e-5;
  // Tabulated embedding is itself an approximation of the net, but it is
  // *self-consistent* (its derivative is the derivative of the table), so
  // the force check passes at the same tolerance.
  for (int i = 0; i < 5; ++i) {
    for (int d = 0; d < 3; ++d) {
      md::Atoms ap = atoms;
      md::Atoms am = atoms;
      ap.x[static_cast<std::size_t>(i)][d] += h;
      am.x[static_cast<std::size_t>(i)][d] -= h;
      const double up = eval_config(model, opts, box, ap).pe;
      const double um = eval_config(model, opts, box, am).pe;
      const double fd = -(up - um) / (2 * h);
      EXPECT_NEAR(base.forces[static_cast<std::size_t>(i)][d], fd, 5e-6)
          << "atom " << i << " dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FullAndCompressed, DpForceCheck,
                         ::testing::Values(false, true));

TEST(DpModel, TranslationInvariance) {
  Rng rng(31);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(24, box, 2, rng);
  EvalOptions opts;
  opts.compressed = false;

  const double e0 = eval_config(model, opts, box, atoms).pe;
  md::Atoms shifted = atoms;
  const Vec3 t{1.37, -2.11, 0.59};
  for (auto& x : shifted.x) {
    x += t;
    box.wrap(x);
  }
  const double e1 = eval_config(model, opts, box, shifted).pe;
  EXPECT_NEAR(e0, e1, 1e-9);
}

TEST(DpModel, RotationInvariance) {
  // Free cluster (no PBC interactions) rotated rigidly: the descriptor's
  // R R^T contraction guarantees rotational invariance.
  Rng rng(37);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {40, 40, 40});
  md::Atoms atoms;
  for (int i = 0; i < 12; ++i) {
    atoms.add_local({20 + rng.uniform(-2.0, 2.0), 20 + rng.uniform(-2.0, 2.0),
                     20 + rng.uniform(-2.0, 2.0)},
                    {0, 0, 0}, i % 2, i);
  }
  EvalOptions opts;
  opts.compressed = false;
  const double e0 = eval_config(model, opts, box, atoms).pe;

  const double ang = 0.83;
  const double ca = std::cos(ang), sa = std::sin(ang);
  md::Atoms rotated = atoms;
  for (auto& x : rotated.x) {
    const Vec3 rel = x - Vec3{20, 20, 20};
    x = Vec3{20 + ca * rel.x - sa * rel.y, 20 + sa * rel.x + ca * rel.y,
             20 + rel.z};
  }
  const double e1 = eval_config(model, opts, box, rotated).pe;
  EXPECT_NEAR(e0, e1, 1e-9);
}

TEST(DpModel, PermutationInvariance) {
  Rng rng(41);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(20, box, 2, rng);
  EvalOptions opts;
  opts.compressed = false;
  const double e0 = eval_config(model, opts, box, atoms).pe;

  // Reverse the atom order (types travel with positions).
  md::Atoms perm;
  for (int i = atoms.nlocal - 1; i >= 0; --i) {
    perm.add_local(atoms.x[static_cast<std::size_t>(i)], {0, 0, 0},
                   atoms.type[static_cast<std::size_t>(i)],
                   atoms.nlocal - 1 - i);
  }
  const double e1 = eval_config(model, opts, box, perm).pe;
  EXPECT_NEAR(e0, e1, 1e-10);
}

TEST(DpModel, NewtonThirdLaw) {
  Rng rng(43);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(30, box, 2, rng);
  EvalOptions opts;
  const Evaluated ev = eval_config(model, opts, box, atoms);
  Vec3 total{0, 0, 0};
  for (const auto& f : ev.forces) total += f;
  EXPECT_NEAR(total.norm(), 0.0, 1e-9);
}

// -------------------------------------------------- precision variants ----

TEST(Precision, Fp32TracksFp64) {
  Rng rng(47);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(30, box, 2, rng);

  EvalOptions o64, o32;
  o64.precision = Precision::Double;
  o32.precision = Precision::MixFp32;
  const Evaluated e64 = eval_config(model, o64, box, atoms);
  const Evaluated e32 = eval_config(model, o32, box, atoms);

  EXPECT_NEAR(e32.pe / atoms.nlocal, e64.pe / atoms.nlocal, 1e-4);
  for (int i = 0; i < atoms.nlocal; ++i) {
    const Vec3 d = e32.forces[static_cast<std::size_t>(i)] -
                   e64.forces[static_cast<std::size_t>(i)];
    EXPECT_LT(d.norm(), 1e-3) << i;
  }
}

TEST(Precision, Fp16DegradesGracefully) {
  Rng rng(53);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(30, box, 2, rng);

  EvalOptions o64, o16;
  o64.precision = Precision::Double;
  o16.precision = Precision::MixFp16;
  const Evaluated e64 = eval_config(model, o64, box, atoms);
  const Evaluated e16 = eval_config(model, o16, box, atoms);

  // fp16 weights in the first fitting GEMM: close but measurably less exact
  // than fp32 (Table II's MIX-fp16 row).
  EXPECT_NEAR(e16.pe / atoms.nlocal, e64.pe / atoms.nlocal, 5e-3);
  EXPECT_GT(std::fabs(e16.pe - e64.pe), 0.0);
}

TEST(Precision, NamesForReports) {
  EXPECT_STREQ(precision_name(Precision::Double), "double");
  EXPECT_STREQ(precision_name(Precision::MixFp32), "MIX-fp32");
  EXPECT_STREQ(precision_name(Precision::MixFp16), "MIX-fp16");
  EXPECT_STREQ(fitting_precision_name(FittingPrecision::Inherit), "inherit");
  EXPECT_STREQ(fitting_precision_name(FittingPrecision::Fp32), "fp32");
  EXPECT_STREQ(fitting_precision_name(FittingPrecision::Bf16), "bf16");
}

// Reduced-precision fitting inside the fp64 pipeline (ISSUE 9, §III-B3):
// hidden fitting layers in fp32 (optionally bf16-stored first-layer
// weights), fp64 energy head + descriptor/force chain.  Oracle = the same
// options at FittingPrecision::Inherit (pure fp64).
Evaluated eval_fitprec(const std::shared_ptr<DPModel>& model,
                       FittingPrecision fp, const md::Box& box,
                       const md::Atoms& atoms) {
  EvalOptions opts;
  opts.precision = Precision::Double;
  opts.fitting_precision = fp;
  opts.block_size = 64;  // multi-block: exercises the concatenated sweep
  return eval_config(model, opts, box, atoms);
}

double max_force_rel_err(const Evaluated& a, const Evaluated& b) {
  double scale = 1.0;
  for (const auto& f : b.forces) scale = std::max(scale, f.norm());
  double err = 0.0;
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    err = std::max(err, (a.forces[i] - b.forces[i]).norm());
  }
  return err / scale;
}

TEST(FittingPrecision, Fp32FitTracksFp64Oracle) {
  Rng rng(61);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {14, 14, 14});
  md::Atoms atoms = random_config(90, box, 2, rng);

  const Evaluated e64 = eval_fitprec(model, FittingPrecision::Inherit, box,
                                     atoms);
  const Evaluated e32 = eval_fitprec(model, FittingPrecision::Fp32, box,
                                     atoms);
  // The fp64 head + fp64 chain keep fp32 hidden layers at ~1e-6 relative;
  // budget 1e-5 (the ISSUE's acceptance bound).
  EXPECT_NEAR(e32.pe / atoms.nlocal, e64.pe / atoms.nlocal, 1e-5);
  EXPECT_LT(max_force_rel_err(e32, e64), 1e-5);
  // It must actually run reduced — bit-identity would mean the knob is dead.
  EXPECT_GT(std::fabs(e32.pe - e64.pe), 0.0);
}

TEST(FittingPrecision, Bf16FitBounded) {
  Rng rng(67);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {14, 14, 14});
  md::Atoms atoms = random_config(90, box, 2, rng);

  const Evaluated e64 = eval_fitprec(model, FittingPrecision::Inherit, box,
                                     atoms);
  const Evaluated e16 = eval_fitprec(model, FittingPrecision::Bf16, box,
                                     atoms);
  // bf16-stored first-layer weights: 8 mantissa bits, so looser than fp32
  // but still bounded (fp32 accumulate, fp64 head).
  EXPECT_NEAR(e16.pe / atoms.nlocal, e64.pe / atoms.nlocal, 1e-2);
  EXPECT_LT(max_force_rel_err(e16, e64), 1e-2);
  EXPECT_GT(std::fabs(e16.pe - e64.pe), 0.0);
}

TEST(FittingPrecision, RequiresDoublePipeline) {
  auto model = small_model();
  EvalOptions opts;
  opts.precision = Precision::MixFp32;
  opts.fitting_precision = FittingPrecision::Fp32;
  EXPECT_THROW(DPEvaluator(model, opts), std::runtime_error);
}

TEST(FittingPrecision, MatchesAcrossBlockCounts) {
  // The concatenated sweep must give the same reduced-precision answer for
  // any block partition: per-type totals, not per-block sizes, define the
  // GEMM shapes' inputs row by row.
  Rng rng(71);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {14, 14, 14});
  md::Atoms atoms = random_config(90, box, 2, rng);

  EvalOptions a, b;
  a.precision = b.precision = Precision::Double;
  a.fitting_precision = b.fitting_precision = FittingPrecision::Fp32;
  a.block_size = 64;
  b.block_size = 32;
  const Evaluated ea = eval_config(model, a, box, atoms);
  const Evaluated eb = eval_config(model, b, box, atoms);
  EXPECT_NEAR(ea.pe, eb.pe, 1e-9 * std::fabs(ea.pe));
  EXPECT_LT(max_force_rel_err(ea, eb), 1e-9);
}

// ----------------------------------------------------- model save/load ----

TEST(DpModel, SaveLoadRoundTrip) {
  Rng rng(59);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(16, box, 2, rng);
  EvalOptions opts;
  opts.compressed = false;
  const double e0 = eval_config(model, opts, box, atoms).pe;

  const std::string path = "/tmp/dpmd_test_model.bin";
  model->save(path);
  auto loaded = std::make_shared<DPModel>(DPModel::load(path));
  EXPECT_EQ(loaded->param_count(), model->param_count());
  const double e1 = eval_config(loaded, opts, box, atoms).pe;
  EXPECT_DOUBLE_EQ(e0, e1);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ dynamics ----

TEST(DpDynamics, NveConservesEnergyWithRandomModel) {
  // Energy conservation is a property of the integrator + smooth forces,
  // independent of the model being physically meaningful — a strong
  // validation that the analytic DP backward pass is the true gradient.
  Rng rng(61);
  auto model = small_model(/*ntypes=*/1, /*seed=*/101);
  const md::Box box({0, 0, 0}, {12, 12, 12});
  md::Atoms atoms = random_config(40, box, 1, rng, /*min_sep=*/2.0);
  md::thermalize(atoms, {30.0}, 40.0, rng);

  EvalOptions opts;
  opts.precision = Precision::Double;
  opts.compressed = false;
  auto pair = std::make_shared<PairDeepMD>(model, opts);
  md::Sim sim(box, std::move(atoms), {30.0}, pair,
              {.dt_fs = 0.25, .skin = 1.0});
  sim.setup();
  const double e0 = sim.thermo().total();
  sim.run(150);
  const double e1 = sim.thermo().total();
  EXPECT_NEAR(e1, e0, std::max(1e-5, std::fabs(e0) * 1e-4));
}

// ------------------------------------------- batched vs per-atom paths ----

/// Relative difference with an absolute floor (forces can legitimately be
/// tiny for near-symmetric environments).
double rel_diff(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-6});
  return std::fabs(a - b) / scale;
}

/// Compares the batched block pipeline at several block sizes against the
/// legacy per-atom path (block_size = 1) on the same configuration.
void expect_batched_matches_per_atom(int natoms, Precision prec,
                                     bool compressed, double tol,
                                     uint64_t seed, double min_sep = 1.2) {
  Rng rng(seed);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(natoms, box, 2, rng, min_sep);

  EvalOptions opts;
  opts.precision = prec;
  opts.compressed = compressed;

  opts.block_size = 1;
  const Evaluated ref = eval_config(model, opts, box, atoms);

  // Block sizes chosen to hit: odd remainder (natoms % 8 != 0 for the
  // configs used below), exact fit, and nlocal < B (block 256).
  for (const int block : {8, 64, 256}) {
    opts.block_size = block;
    const Evaluated got = eval_config(model, opts, box, atoms);
    EXPECT_LT(rel_diff(got.pe, ref.pe), tol)
        << "pe, block=" << block;
    EXPECT_LT(rel_diff(got.virial, ref.virial), tol)
        << "virial, block=" << block;
    for (int i = 0; i < natoms; ++i) {
      EXPECT_LT(rel_diff(got.atom_e[static_cast<std::size_t>(i)],
                         ref.atom_e[static_cast<std::size_t>(i)]),
                tol)
          << "atom energy " << i << ", block=" << block;
      for (int d = 0; d < 3; ++d) {
        EXPECT_LT(rel_diff(got.forces[static_cast<std::size_t>(i)][d],
                           ref.forces[static_cast<std::size_t>(i)][d]),
                  tol)
            << "force atom " << i << " dim " << d << ", block=" << block;
      }
    }
  }
}

TEST(DpBatch, MatchesPerAtomDoubleCompressed) {
  // Acceptance bar: <= 1e-10 relative in double precision.  37 atoms with
  // block 8 exercises the remainder block (37 % 8 = 5), block 256 the
  // nlocal < B case.
  expect_batched_matches_per_atom(37, Precision::Double, true, 1e-10, 71);
}

TEST(DpBatch, MatchesPerAtomDoubleFullEmbedding) {
  expect_batched_matches_per_atom(37, Precision::Double, false, 1e-10, 73);
}

TEST(DpBatch, MatchesPerAtomMixFp32) {
  // Same math, different GEMM summation order: fp32 round-off only.
  expect_batched_matches_per_atom(30, Precision::MixFp32, true, 5e-4, 79);
  expect_batched_matches_per_atom(30, Precision::MixFp32, false, 5e-4, 83);
}

TEST(DpBatch, MatchesPerAtomMixFp16) {
  expect_batched_matches_per_atom(30, Precision::MixFp16, true, 5e-4, 89);
  // Full embedding exercises the GEMM-cast contraction together with the
  // fp16-weight first fitting GEMM.
  expect_batched_matches_per_atom(30, Precision::MixFp16, false, 5e-4, 91);
}

TEST(DpBatch, ThreadedBlocksMatchSerial) {
  // Blocks are claimed dynamically across the pool; per-thread force
  // buffers must reduce to the serial result regardless of which thread
  // evaluates which block.
  Rng rng(109);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(40, box, 2, rng);
  md::build_periodic_ghosts(atoms, box, model->config().descriptor.rcut);
  md::NeighborList list({model->config().descriptor.rcut, 0.0, true});
  list.build(atoms, box);

  EvalOptions opts;
  opts.block_size = 8;  // 5 blocks over 4 threads
  PairDeepMD serial(model, opts);
  rt::ThreadPool pool(4);
  PairDeepMD threaded(model, opts, &pool);

  atoms.zero_forces();
  const md::ForceResult r0 = serial.compute(atoms, list);
  std::vector<Vec3> f0(atoms.f.begin(), atoms.f.end());
  atoms.zero_forces();
  const md::ForceResult r1 = threaded.compute(atoms, list);

  EXPECT_NEAR(r1.pe, r0.pe, 1e-10);
  EXPECT_NEAR(r1.virial, r0.virial, 1e-10);
  for (int i = 0; i < atoms.ntotal(); ++i) {
    const Vec3 d = atoms.f[static_cast<std::size_t>(i)] -
                   f0[static_cast<std::size_t>(i)];
    EXPECT_LT(d.norm(), 1e-10) << i;
  }

  std::vector<double> e_serial, e_threaded;
  ASSERT_TRUE(serial.per_atom_energy(atoms, list, e_serial));
  ASSERT_TRUE(threaded.per_atom_energy(atoms, list, e_threaded));
  for (int i = 0; i < atoms.nlocal; ++i) {
    EXPECT_NEAR(e_threaded[static_cast<std::size_t>(i)],
                e_serial[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(DpBatch, TinySystemSmallerThanAnyBlock) {
  expect_batched_matches_per_atom(3, Precision::Double, true, 1e-10, 97);
}

TEST(DpBatch, ZeroNeighborAtomsAreExact) {
  // Two isolated atoms far outside everyone's cutoff (rcut = 4.5) plus a
  // compact cluster: zero-neighbor descriptors must flow through the
  // batched fitting GEMM (and the GEMM-cast contraction's empty segments)
  // and come out identical to the per-atom path, in both embedding modes.
  auto model = small_model();
  const md::Box box({0, 0, 0}, {30, 30, 30});
  Rng rng(101);
  md::Atoms atoms;
  int id = 0;
  for (int i = 0; i < 6; ++i) {
    atoms.add_local({4 + rng.uniform(0.0, 2.5), 4 + rng.uniform(0.0, 2.5),
                     4 + rng.uniform(0.0, 2.5)},
                    {0, 0, 0}, i % 2, id++);
  }
  atoms.add_local({15, 15, 15}, {0, 0, 0}, 0, id++);
  atoms.add_local({22, 22, 22}, {0, 0, 0}, 1, id++);

  for (const bool compressed : {true, false}) {
    EvalOptions opts;
    opts.compressed = compressed;
    opts.block_size = 1;
    const Evaluated ref = eval_config(model, opts, box, atoms);
    opts.block_size = 64;
    const Evaluated got = eval_config(model, opts, box, atoms);

    ASSERT_EQ(ref.atom_e.size(), got.atom_e.size());
    for (std::size_t i = 0; i < ref.atom_e.size(); ++i) {
      // Per-atom and batched paths contract A in different (both valid)
      // summation orders, so clustered atoms agree only to amplified
      // round-off, a few 1e-12 relative; the exactness claim of this test
      // is the zero-neighbor atoms below.
      EXPECT_LT(rel_diff(got.atom_e[i], ref.atom_e[i]), 1e-11)
          << i << " compressed=" << compressed;
    }
    // The isolated atoms see nothing: energy is exactly the zero-descriptor
    // fitting output, force is zero.
    EXPECT_NEAR(got.forces[6].norm(), 0.0, 1e-12);
    EXPECT_NEAR(got.forces[7].norm(), 0.0, 1e-12);
  }
}

TEST(DpBatch, RefreshedEnvBatchMatchesRebuildAndFilteredPhysics) {
  // Skin-cadence env reuse (ISSUE 4): a batch built with keep_list_rows
  // and refreshed after drift must (a) equal a from-scratch keep_list_rows
  // rebuild bit-for-bit, and (b) produce the same energies and per-atom
  // force contributions as the rcut-filtered batch at the same positions —
  // the extra skin-band rows contribute exactly nothing.
  auto model = small_model();
  const auto& dparams = model->config().descriptor;
  Rng rng(113);
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(40, box, 2, rng);
  const double skin = 1.0;
  md::build_periodic_ghosts(atoms, box, dparams.rcut + skin);
  md::NeighborList list({dparams.rcut, skin, true});
  list.build(atoms, box);

  std::vector<int> centers(static_cast<std::size_t>(atoms.nlocal));
  for (int i = 0; i < atoms.nlocal; ++i) {
    centers[static_cast<std::size_t>(i)] = i;
  }
  AtomEnvBatch built;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  built, /*keep_list_rows=*/true);
  AtomEnvBatch filtered0;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  filtered0, /*keep_list_rows=*/false);
  EXPECT_GT(built.rows(), filtered0.rows());  // the skin band is real

  // Drift locals (well under skin/2) and move ghost images with parents.
  for (int i = 0; i < atoms.nlocal; ++i) {
    const double t = 0.37 * i;
    atoms.x[static_cast<std::size_t>(i)] +=
        Vec3{0.2 * std::sin(t), 0.2 * std::cos(t), 0.15 * std::sin(2 * t)};
  }
  for (int g = 0; g < atoms.nghost; ++g) {
    atoms.x[static_cast<std::size_t>(atoms.nlocal + g)] =
        atoms.x[static_cast<std::size_t>(
            atoms.ghost_parent[static_cast<std::size_t>(g)])] +
        atoms.ghost_shift[static_cast<std::size_t>(g)];
  }

  AtomEnvBatch refreshed = built;  // structure + stale payload
  refresh_env_batch(atoms, dparams, refreshed);
  AtomEnvBatch rebuilt;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  rebuilt, /*keep_list_rows=*/true);
  ASSERT_EQ(refreshed.rows(), rebuilt.rows());
  ASSERT_EQ(refreshed.seg_offset, rebuilt.seg_offset);
  ASSERT_EQ(refreshed.seg_active, rebuilt.seg_active);
  // Rows within a segment may be permuted between the two (the stable
  // compaction orders by the *previous* partition, a rebuild by list
  // order), so compare them keyed by neighbor index: same row payload,
  // bit for bit, for every (segment, neighbor).
  const auto segment_rows = [](const AtomEnvBatch& b) {
    std::map<std::pair<int, int>, std::array<double, 16>> out;
    for (int t = 0; t < b.ntypes; ++t) {
      for (int a = 0; a < b.natoms; ++a) {
        const std::size_t seg = static_cast<std::size_t>(t) * b.natoms + a;
        for (int r = b.seg_offset[seg]; r < b.seg_offset[seg + 1]; ++r) {
          std::array<double, 16> row;
          for (int k = 0; k < 4; ++k) {
            row[static_cast<std::size_t>(k)] =
                b.rmat[static_cast<std::size_t>(r) * 4 + k];
          }
          for (int k = 0; k < 12; ++k) {
            row[static_cast<std::size_t>(4 + k)] =
                b.drmat[static_cast<std::size_t>(r) * 12 + k];
          }
          out[{static_cast<int>(seg),
               b.nbr_index[static_cast<std::size_t>(r)]}] = row;
        }
      }
    }
    return out;
  };
  EXPECT_EQ(segment_rows(refreshed), segment_rows(rebuilt));

  // Physics vs the filtered batch at the new positions.
  AtomEnvBatch filtered;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  filtered, /*keep_list_rows=*/false);
  DPEvaluator ev(model, EvalOptions{});
  std::vector<double> e_reuse, e_filt;
  std::vector<Vec3> dedd_reuse, dedd_filt;
  ev.evaluate_batch(refreshed, e_reuse, dedd_reuse);
  ev.evaluate_batch(filtered, e_filt, dedd_filt);
  ASSERT_EQ(e_reuse.size(), e_filt.size());
  for (std::size_t a = 0; a < e_reuse.size(); ++a) {
    EXPECT_NEAR(e_reuse[a], e_filt[a],
                1e-12 * std::max(1.0, std::fabs(e_filt[a])))
        << a;
  }
  const auto scatter = [&](const AtomEnvBatch& b,
                           const std::vector<Vec3>& dedd) {
    std::vector<Vec3> f(static_cast<std::size_t>(atoms.ntotal()),
                        Vec3{0, 0, 0});
    for (int r = 0; r < b.rows(); ++r) {
      const Vec3& grad = dedd[static_cast<std::size_t>(r)];
      const int j = b.nbr_index[static_cast<std::size_t>(r)];
      const int i = b.center_index[static_cast<std::size_t>(
          b.row_slot[static_cast<std::size_t>(r)])];
      f[static_cast<std::size_t>(j)] -= grad;
      f[static_cast<std::size_t>(i)] += grad;
    }
    return f;
  };
  const auto f_reuse = scatter(refreshed, dedd_reuse);
  const auto f_filt = scatter(filtered, dedd_filt);
  for (std::size_t i = 0; i < f_reuse.size(); ++i) {
    EXPECT_LT((f_reuse[i] - f_filt[i]).norm(), 1e-12) << i;
  }
}

TEST(DpBatch, EnvBatchAgreesWithPerAtomEnvs) {
  // Structural check of the packed layout itself: every (slot, type)
  // segment must hold exactly the rows of the per-atom environment.
  Rng rng(103);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(21, box, 2, rng);
  md::build_periodic_ghosts(atoms, box, model->config().descriptor.rcut);
  md::NeighborList list({model->config().descriptor.rcut, 0.0, true});
  list.build(atoms, box);
  const auto& params = model->config().descriptor;

  AtomEnvBatch batch;
  const int first = 5, count = 9;
  build_env_batch(atoms, list, first, count, params, 2, batch);
  ASSERT_EQ(batch.natoms, count);

  AtomEnv env;
  for (int a = 0; a < count; ++a) {
    build_env(atoms, list, first + a, params, 2, env);
    ASSERT_EQ(batch.nnei_of(a), env.nnei()) << "slot " << a;
    EXPECT_EQ(batch.center_type[static_cast<std::size_t>(a)],
              env.center_type);
    for (int t = 0; t < 2; ++t) {
      const int seg_lo =
          batch.seg_offset[static_cast<std::size_t>(t) * count + a];
      const int seg_hi =
          batch.seg_offset[static_cast<std::size_t>(t) * count + a + 1];
      const int env_lo = env.type_offset[static_cast<std::size_t>(t)];
      ASSERT_EQ(seg_hi - seg_lo,
                env.type_offset[static_cast<std::size_t>(t) + 1] - env_lo);
      for (int k = 0; k < seg_hi - seg_lo; ++k) {
        const int r = seg_lo + k;
        const int ek = env_lo + k;
        EXPECT_EQ(batch.row_slot[static_cast<std::size_t>(r)], a);
        EXPECT_EQ(batch.nbr_index[static_cast<std::size_t>(r)],
                  env.nbr_index[static_cast<std::size_t>(ek)]);
        for (int c = 0; c < 4; ++c) {
          EXPECT_DOUBLE_EQ(
              batch.rmat[static_cast<std::size_t>(r) * 4 + c],
              env.rmat[static_cast<std::size_t>(ek) * 4 + c]);
        }
        for (int c = 0; c < 12; ++c) {
          EXPECT_DOUBLE_EQ(
              batch.drmat[static_cast<std::size_t>(r) * 12 + c],
              env.drmat[static_cast<std::size_t>(ek) * 12 + c]);
        }
      }
    }
  }
  // Fit-order bookkeeping: fit_order/fit_pos are inverse permutations and
  // the fit blocks are center-type-sorted.
  for (int f = 0; f < count; ++f) {
    const int slot = batch.fit_order[static_cast<std::size_t>(f)];
    EXPECT_EQ(batch.fit_pos[static_cast<std::size_t>(slot)], f);
  }
  for (int t = 0; t < 2; ++t) {
    for (int f = batch.fit_type_offset[static_cast<std::size_t>(t)];
         f < batch.fit_type_offset[static_cast<std::size_t>(t) + 1]; ++f) {
      EXPECT_EQ(batch.center_type[static_cast<std::size_t>(
                    batch.fit_order[static_cast<std::size_t>(f)])],
                t);
    }
  }
}

TEST(DpBatch, EvaluateBatchDirectMatchesEvaluateAtom) {
  // Driver-free check of DPEvaluator::evaluate_batch itself (no PairDeepMD
  // in the loop): packed dE_dd rows must equal the per-atom gradients.
  // Runs both embedding modes — the full-embedding branch feeds the
  // GEMM-cast contraction straight from the MLP cache slabs.
  Rng rng(107);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(13, box, 2, rng);
  md::build_periodic_ghosts(atoms, box, model->config().descriptor.rcut);
  md::NeighborList list({model->config().descriptor.rcut, 0.0, true});
  list.build(atoms, box);
  const auto& params = model->config().descriptor;

  for (const bool compressed : {true, false}) {
    EvalOptions opts;
    opts.compressed = compressed;
    DPEvaluator ev(model, opts);

    AtomEnvBatch batch;
    build_env_batch(atoms, list, 0, atoms.nlocal, params, 2, batch);
    std::vector<double> energies;
    std::vector<Vec3> dedd_batch;
    ev.evaluate_batch(batch, energies, dedd_batch);
    ASSERT_EQ(static_cast<int>(energies.size()), atoms.nlocal);
    ASSERT_EQ(static_cast<int>(dedd_batch.size()), batch.rows());

    AtomEnv env;
    std::vector<Vec3> dedd;
    for (int a = 0; a < atoms.nlocal; ++a) {
      build_env(atoms, list, a, params, 2, env);
      const double e = ev.evaluate_atom(env, dedd);
      EXPECT_LT(rel_diff(energies[static_cast<std::size_t>(a)], e), 1e-12)
          << a << " compressed=" << compressed;
      for (int t = 0; t < 2; ++t) {
        const int seg_lo =
            batch.seg_offset[static_cast<std::size_t>(t) * batch.natoms + a];
        const int env_lo = env.type_offset[static_cast<std::size_t>(t)];
        const int n =
            env.type_offset[static_cast<std::size_t>(t) + 1] - env_lo;
        for (int k = 0; k < n; ++k) {
          const Vec3 d = dedd_batch[static_cast<std::size_t>(seg_lo + k)] -
                         dedd[static_cast<std::size_t>(env_lo + k)];
          EXPECT_LT(d.norm(), 1e-10)
              << "slot " << a << " type " << t << " k " << k;
        }
      }
    }
  }
}

// -------------------------------------- fused tabulate-contraction (IS5) ----

/// Full-pipeline fused vs unfused comparison on one configuration: same
/// model, same positions, only EvalOptions::fused_table differs.
void expect_fused_matches_unfused(const std::shared_ptr<DPModel>& model,
                                  const md::Box& box, const md::Atoms& atoms,
                                  Precision prec, double tol,
                                  double s_max = 0.0) {
  EvalOptions opts;
  opts.precision = prec;
  opts.compressed = true;
  opts.compression_s_max = s_max;
  for (const int block : {8, 64}) {
    opts.block_size = block;
    opts.fused_table = false;
    const Evaluated ref = eval_config(model, opts, box, atoms);
    opts.fused_table = true;
    const Evaluated got = eval_config(model, opts, box, atoms);
    EXPECT_LT(rel_diff(got.pe, ref.pe), tol) << "pe, block=" << block;
    EXPECT_LT(rel_diff(got.virial, ref.virial), tol)
        << "virial, block=" << block;
    ASSERT_EQ(got.atom_e.size(), ref.atom_e.size());
    for (std::size_t i = 0; i < ref.atom_e.size(); ++i) {
      EXPECT_LT(rel_diff(got.atom_e[i], ref.atom_e[i]), tol)
          << "atom energy " << i << ", block=" << block;
      for (int d = 0; d < 3; ++d) {
        EXPECT_LT(rel_diff(got.forces[i][d], ref.forces[i][d]), tol)
            << "force atom " << i << " dim " << d << ", block=" << block;
      }
    }
  }
}

TEST(DpFused, MatchesUnfusedDoubleAtTightTolerance) {
  // ISSUE 5 acceptance bar: fused == unfused at <= 1e-12 in fp64.  Mixed
  // types, plus two isolated atoms (zero-neighbor slots: the fused drivers
  // must still emit their zero-descriptor energy and an exactly empty
  // backward).
  Rng rng(211);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {22, 22, 22});
  md::Atoms atoms = random_config(30, box, 2, rng);
  for (int i = 0; i < atoms.nlocal; ++i) {
    // Compress the cloud into one corner so the two far atoms are isolated.
    atoms.x[static_cast<std::size_t>(i)] *= 0.5;
  }
  // x = 16.5 sits 5.5 A from both faces of the cloud's [0, 11] slab (also
  // through the periodic wrap), beyond the 4.5 A cutoff.
  atoms.add_local({16.5, 3.0, 3.0}, {0, 0, 0}, 0, 30);
  atoms.add_local({16.5, 8.0, 8.0}, {0, 0, 0}, 1, 31);
  expect_fused_matches_unfused(model, box, atoms, Precision::Double, 1e-12);
}

TEST(DpFused, MatchesUnfusedWithEmptyTypeSegments) {
  // Every atom is type 0 under a two-type model: all type-1 segments are
  // empty in every block, the empty-segment skip of both drivers.
  Rng rng(223);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(24, box, 1, rng);
  expect_fused_matches_unfused(model, box, atoms, Precision::Double, 1e-12);
}

TEST(DpFused, MatchesUnfusedAcrossClampAndExtensionBins) {
  // A deliberately short table (compression_s_max = 0.4) pushes many rows
  // past s_max into the linear-extension branch, and close pairs visit the
  // top bins; the fused Horner must track eval_row through both.
  Rng rng(227);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(30, box, 2, rng, /*min_sep=*/1.0);
  expect_fused_matches_unfused(model, box, atoms, Precision::Double, 1e-12,
                               /*s_max=*/0.4);
}

TEST(DpFused, MixModesMatchUnfusedWithinMixTolerance) {
  // The fused Mix kernels evaluate the fp32 coefficient table natively
  // (the unfused path tabulates in fp64 and casts), so agreement is fp32
  // round-off — the same tolerance the batched-vs-per-atom mix tests use.
  Rng rng(229);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(30, box, 2, rng);
  expect_fused_matches_unfused(model, box, atoms, Precision::MixFp32, 5e-4);
  expect_fused_matches_unfused(model, box, atoms, Precision::MixFp16, 5e-4);
}

TEST(DpFused, ContractRowsMatchEvalRowReference) {
  // Kernel-level check against the unfused math spelled out with eval_row:
  // forward A accumulation and backward dE/dd on synthetic rows spanning
  // in-range bins and the out-of-range linear extension.
  auto model = small_model();
  const double s_max = 1.1;
  const auto table = CompressedEmbedding::build(model->embedding(0),
                                                {0.0, s_max, 64});
  const int m1 = table.m1();
  Rng rng(233);
  const int rows = 17;
  std::vector<double> rmat(static_cast<std::size_t>(rows) * 4);
  std::vector<double> drmat(static_cast<std::size_t>(rows) * 12);
  for (int r = 0; r < rows; ++r) {
    // Rows 0..11 inside the table, the rest beyond s_max (extension).
    rmat[static_cast<std::size_t>(r) * 4] =
        r < 12 ? rng.uniform(0.01, s_max) : rng.uniform(s_max, 2.0 * s_max);
    for (int c = 1; c < 4; ++c) {
      rmat[static_cast<std::size_t>(r) * 4 + c] = rng.uniform(-0.5, 0.5);
    }
    for (int c = 0; c < 12; ++c) {
      drmat[static_cast<std::size_t>(r) * 12 + c] = rng.uniform(-1.0, 1.0);
    }
  }
  std::vector<double> da(static_cast<std::size_t>(4) * m1);
  for (auto& v : da) v = rng.uniform(-1.0, 1.0);
  const double inv_n = 1.0 / 48.0;

  // Reference: eval_row per row, then the unfused contraction loops.
  std::vector<double> g(static_cast<std::size_t>(m1));
  std::vector<double> dgds(static_cast<std::size_t>(m1));
  std::vector<double> a_ref(static_cast<std::size_t>(4) * m1, 0.0);
  std::vector<Vec3> dedd_ref(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const double* rrow = rmat.data() + static_cast<std::size_t>(r) * 4;
    table.eval_row(rrow[0], g.data(), dgds.data());
    double dr[4] = {0, 0, 0, 0};
    double ds = 0.0;
    for (int c = 0; c < 4; ++c) {
      for (int p = 0; p < m1; ++p) {
        a_ref[static_cast<std::size_t>(c) * m1 + p] +=
            inv_n * rrow[c] * g[static_cast<std::size_t>(p)];
        dr[c] += g[static_cast<std::size_t>(p)] *
                 da[static_cast<std::size_t>(c) * m1 + p];
      }
      dr[c] *= inv_n;
    }
    for (int p = 0; p < m1; ++p) {
      double dg_p = 0.0;
      for (int c = 0; c < 4; ++c) {
        dg_p += rrow[c] * da[static_cast<std::size_t>(c) * m1 + p];
      }
      ds += inv_n * dg_p * dgds[static_cast<std::size_t>(p)];
    }
    const double* der = drmat.data() + static_cast<std::size_t>(r) * 12;
    for (int axis = 0; axis < 3; ++axis) {
      double acc = ds * der[axis];
      for (int c = 0; c < 4; ++c) acc += dr[c] * der[c * 3 + axis];
      dedd_ref[static_cast<std::size_t>(r)][axis] = acc;
    }
  }

  std::vector<double> a_fused(static_cast<std::size_t>(4) * m1, 0.0);
  table.eval_contract_rows(rmat.data(), rows, inv_n, a_fused.data());
  std::vector<Vec3> dedd_fused(static_cast<std::size_t>(rows));
  table.eval_contract_backward_rows(rmat.data(), drmat.data(), da.data(),
                                    rows, inv_n, dedd_fused.data());
  for (int i = 0; i < 4 * m1; ++i) {
    EXPECT_LT(rel_diff(a_fused[static_cast<std::size_t>(i)],
                       a_ref[static_cast<std::size_t>(i)]), 1e-12)
        << i;
  }
  for (int r = 0; r < rows; ++r) {
    EXPECT_LT((dedd_fused[static_cast<std::size_t>(r)] -
               dedd_ref[static_cast<std::size_t>(r)]).norm(),
              1e-12 * std::max(1.0,
                               dedd_ref[static_cast<std::size_t>(r)].norm()))
        << r;
  }

  // fp32 kernels over the fp32 coefficient layout: fp32 round-off only.
  std::vector<float> a_f(static_cast<std::size_t>(4) * m1, 0.0f);
  std::vector<float> da_f(da.begin(), da.end());
  table.eval_contract_rows(rmat.data(), rows, inv_n, a_f.data());
  std::vector<Vec3> dedd_f(static_cast<std::size_t>(rows));
  table.eval_contract_backward_rows(rmat.data(), drmat.data(), da_f.data(),
                                    rows, inv_n, dedd_f.data());
  for (int i = 0; i < 4 * m1; ++i) {
    EXPECT_LT(rel_diff(static_cast<double>(a_f[static_cast<std::size_t>(i)]),
                       a_ref[static_cast<std::size_t>(i)]), 5e-4)
        << i;
  }
  for (int r = 0; r < rows; ++r) {
    EXPECT_LT((dedd_f[static_cast<std::size_t>(r)] -
               dedd_ref[static_cast<std::size_t>(r)]).norm(),
              5e-4 * std::max(1.0,
                              dedd_ref[static_cast<std::size_t>(r)].norm()))
        << r;
  }
}

TEST(DpFused, RefreshedBatchMatchesRebuiltAndUnfused) {
  // The steady-state fast path: a keep_list_rows batch refreshed after
  // drift, evaluated through the fused drivers, must match (a) the unfused
  // slab pipeline on the identical batch at <= 1e-12 and (b) the fused
  // evaluation of a freshly rebuilt rcut-filtered batch — skin tails
  // contribute exactly nothing through the fused sweep too.
  auto model = small_model();
  const auto& dparams = model->config().descriptor;
  Rng rng(239);
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(40, box, 2, rng);
  const double skin = 1.0;
  md::build_periodic_ghosts(atoms, box, dparams.rcut + skin);
  md::NeighborList list({dparams.rcut, skin, true});
  list.build(atoms, box);

  std::vector<int> centers(static_cast<std::size_t>(atoms.nlocal));
  for (int i = 0; i < atoms.nlocal; ++i) {
    centers[static_cast<std::size_t>(i)] = i;
  }
  AtomEnvBatch reuse;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  reuse, /*keep_list_rows=*/true);
  // Drift (well under skin/2) and refresh positions-only.
  for (int i = 0; i < atoms.nlocal; ++i) {
    const double t = 0.51 * i;
    atoms.x[static_cast<std::size_t>(i)] +=
        Vec3{0.2 * std::sin(t), 0.15 * std::cos(t), 0.2 * std::sin(3 * t)};
  }
  for (int g = 0; g < atoms.nghost; ++g) {
    atoms.x[static_cast<std::size_t>(atoms.nlocal + g)] =
        atoms.x[static_cast<std::size_t>(
            atoms.ghost_parent[static_cast<std::size_t>(g)])] +
        atoms.ghost_shift[static_cast<std::size_t>(g)];
  }
  refresh_env_batch(atoms, dparams, reuse);
  AtomEnvBatch filtered;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  filtered, /*keep_list_rows=*/false);

  EvalOptions fused_opts;
  EvalOptions unfused_opts;
  unfused_opts.fused_table = false;
  DPEvaluator ev_fused(model, fused_opts);
  DPEvaluator ev_unfused(model, unfused_opts);

  std::vector<double> e_fused, e_unfused, e_filt;
  std::vector<Vec3> d_fused, d_unfused, d_filt;
  ev_fused.evaluate_batch(reuse, e_fused, d_fused);
  ev_unfused.evaluate_batch(reuse, e_unfused, d_unfused);
  ev_fused.evaluate_batch(filtered, e_filt, d_filt);

  ASSERT_EQ(e_fused.size(), e_unfused.size());
  for (std::size_t a = 0; a < e_fused.size(); ++a) {
    EXPECT_LT(rel_diff(e_fused[a], e_unfused[a]), 1e-12) << a;
    EXPECT_LT(rel_diff(e_fused[a], e_filt[a]), 1e-12) << a;
  }
  for (std::size_t r = 0; r < d_fused.size(); ++r) {
    EXPECT_LT((d_fused[r] - d_unfused[r]).norm(),
              1e-12 * std::max(1.0, d_unfused[r].norm()))
        << r;
  }
  // Skin-tail rows are exact zeros out of the fused backward.
  for (int t = 0; t < reuse.ntypes; ++t) {
    for (int a = 0; a < reuse.natoms; ++a) {
      const std::size_t seg =
          static_cast<std::size_t>(t) * reuse.natoms + a;
      for (int r = reuse.seg_offset[seg] + reuse.seg_active[seg];
           r < reuse.seg_offset[seg + 1]; ++r) {
        EXPECT_EQ(d_fused[static_cast<std::size_t>(r)].norm(), 0.0) << r;
      }
    }
  }
}

TEST(DpBatch, FullEmbeddingActivePackMatchesFilteredBatch) {
  // The full-embedding skin-tail pack (ISSUE 5 satellite): an uncompressed
  // keep_list_rows batch — refreshed after drift so the compaction is
  // genuinely re-partitioned — routes the embedding MLP over active-packed
  // slabs (g_row_off indexing), and must match the rcut-filtered batch at
  // the same positions to fp64 round-off.
  auto model = small_model();
  const auto& dparams = model->config().descriptor;
  Rng rng(251);
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(40, box, 2, rng);
  const double skin = 1.0;
  md::build_periodic_ghosts(atoms, box, dparams.rcut + skin);
  md::NeighborList list({dparams.rcut, skin, true});
  list.build(atoms, box);

  std::vector<int> centers(static_cast<std::size_t>(atoms.nlocal));
  for (int i = 0; i < atoms.nlocal; ++i) {
    centers[static_cast<std::size_t>(i)] = i;
  }
  AtomEnvBatch reuse;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  reuse, /*keep_list_rows=*/true);
  for (int i = 0; i < atoms.nlocal; ++i) {
    const double t = 0.43 * i;
    atoms.x[static_cast<std::size_t>(i)] +=
        Vec3{0.18 * std::sin(t), 0.2 * std::cos(2 * t), 0.15 * std::sin(t)};
  }
  for (int g = 0; g < atoms.nghost; ++g) {
    atoms.x[static_cast<std::size_t>(atoms.nlocal + g)] =
        atoms.x[static_cast<std::size_t>(
            atoms.ghost_parent[static_cast<std::size_t>(g)])] +
        atoms.ghost_shift[static_cast<std::size_t>(g)];
  }
  refresh_env_batch(atoms, dparams, reuse);
  // The pack must have real work to do: some segment carries a tail.
  int tails = 0;
  for (std::size_t s = 0; s < reuse.seg_active.size(); ++s) {
    tails += reuse.seg_offset[s + 1] - reuse.seg_offset[s] -
             reuse.seg_active[s];
  }
  ASSERT_GT(tails, 0);
  AtomEnvBatch filtered;
  build_env_batch(atoms, list, centers.data(), atoms.nlocal, dparams, 2,
                  filtered, /*keep_list_rows=*/false);

  EvalOptions opts;
  opts.compressed = false;
  DPEvaluator ev(model, opts);
  std::vector<double> e_pack, e_filt;
  std::vector<Vec3> d_pack, d_filt;
  ev.evaluate_batch(reuse, e_pack, d_pack);
  ev.evaluate_batch(filtered, e_filt, d_filt);
  ASSERT_EQ(e_pack.size(), e_filt.size());
  for (std::size_t a = 0; a < e_pack.size(); ++a) {
    EXPECT_LT(rel_diff(e_pack[a], e_filt[a]), 1e-12) << a;
  }
  // Per-row gradients: match active rows by (segment, neighbor index) —
  // the compaction may permute rows within a segment vs the filtered
  // build's list order.
  const auto row_map = [](const AtomEnvBatch& b,
                          const std::vector<Vec3>& dedd) {
    std::map<std::pair<int, int>, Vec3> out;
    for (int t = 0; t < b.ntypes; ++t) {
      for (int a = 0; a < b.natoms; ++a) {
        const std::size_t seg = static_cast<std::size_t>(t) * b.natoms + a;
        const int lo = b.seg_offset[seg];
        for (int r = lo; r < lo + b.active_rows(t, a); ++r) {
          out[{static_cast<int>(seg),
               b.nbr_index[static_cast<std::size_t>(r)]}] =
              dedd[static_cast<std::size_t>(r)];
        }
      }
    }
    return out;
  };
  const auto m_pack = row_map(reuse, d_pack);
  const auto m_filt = row_map(filtered, d_filt);
  ASSERT_EQ(m_pack.size(), m_filt.size());
  for (const auto& [key, grad] : m_filt) {
    const auto it = m_pack.find(key);
    ASSERT_NE(it, m_pack.end());
    EXPECT_LT((it->second - grad).norm(),
              1e-12 * std::max(1.0, grad.norm()))
        << key.first << "/" << key.second;
  }
}

TEST(DpFused, TrajectoryMatchesUnfusedRecomputationEveryStep) {
  // The acceptance pin: a fused-driven NVE trajectory whose forces are
  // recomputed every step by the unfused pipeline at the same positions
  // agrees to <= 1e-12 — no drift source besides round-off exists between
  // the two pipelines.
  Rng rng(241);
  auto model = small_model(/*ntypes=*/1, /*seed=*/103);
  const md::Box box({0, 0, 0}, {12, 12, 12});
  md::Atoms atoms = random_config(32, box, 1, rng, /*min_sep=*/2.0);
  md::thermalize(atoms, {30.0}, 40.0, rng);

  EvalOptions opts;  // fp64 compressed, fused default
  auto pair = std::make_shared<PairDeepMD>(model, opts);
  md::Sim sim(box, std::move(atoms), {30.0}, pair,
              {.dt_fs = 0.25, .skin = 1.0, .rebuild_every = 10});
  sim.setup();

  EvalOptions unfused = opts;
  unfused.fused_table = false;
  for (int s = 0; s < 20; ++s) {
    sim.step();
    md::Atoms snap;
    for (int i = 0; i < sim.atoms().nlocal; ++i) {
      snap.add_local(sim.atoms().x[static_cast<std::size_t>(i)],
                     {0, 0, 0},
                     sim.atoms().type[static_cast<std::size_t>(i)], i);
    }
    const Evaluated ref = eval_config(model, unfused, box, snap);
    double fscale = 1.0;
    for (const Vec3& f : ref.forces) fscale = std::max(fscale, f.norm());
    for (int i = 0; i < sim.atoms().nlocal; ++i) {
      const Vec3 d = sim.atoms().f[static_cast<std::size_t>(i)] -
                     ref.forces[static_cast<std::size_t>(i)];
      EXPECT_LT(d.norm() / fscale, 1e-12) << "step " << s << " atom " << i;
    }
    EXPECT_LT(rel_diff(sim.pe(), ref.pe), 1e-12) << "step " << s;
  }
}

TEST(DpPair, PerAtomEnergySumsToTotal) {
  Rng rng(67);
  auto model = small_model();
  const md::Box box({0, 0, 0}, {11, 11, 11});
  md::Atoms atoms = random_config(25, box, 2, rng);
  md::build_periodic_ghosts(atoms, box, model->config().descriptor.rcut);
  md::NeighborList list({model->config().descriptor.rcut, 0.0, true});
  list.build(atoms, box);

  PairDeepMD pair(model, EvalOptions{});
  atoms.zero_forces();
  const md::ForceResult res = pair.compute(atoms, list);
  std::vector<double> energies;
  ASSERT_TRUE(pair.per_atom_energy(atoms, list, energies));
  double sum = 0.0;
  for (const double e : energies) sum += e;
  EXPECT_NEAR(sum, res.pe, 1e-9);
}

}  // namespace
}  // namespace dpmd::dp
