// Staged force API (ISSUE 3): the staged begin_step / compute_partition /
// end_step path must produce the same forces, potential energy and virial
// as the monolithic Pair::compute across every pair style — including the
// default adapter (EAM) and the natively partitioned Deep Potential — on
// both the single-process Sim and the distributed DomainEngine, with and
// without exchange/compute overlap.  Plus the interior/boundary
// classification edge cases and the new async runtime/comm primitives the
// overlap path is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>

#include "comm/domain_engine.hpp"
#include "core/pair_deepmd.hpp"
#include "md/lattice.hpp"
#include "md/pair_eam.hpp"
#include "md/pair_lj.hpp"
#include "md/pair_morse.hpp"
#include "md/pair_water_ref.hpp"
#include "md/partition.hpp"
#include "md/sim.hpp"
#include "md/thermo.hpp"
#include "runtime/threadpool.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

// ---------------------------------------------------------------------------
// Partition classification edge cases
// ---------------------------------------------------------------------------

TEST(Partition, StrictMarginClassification) {
  md::Box box({0, 0, 0}, {20, 20, 20});
  md::Atoms atoms;
  atoms.add_local({5.0, 10, 10}, {0, 0, 0}, 0, 0);   // exactly at margin
  atoms.add_local({5.001, 10, 10}, {0, 0, 0}, 0, 1); // just inside
  atoms.add_local({4.0, 10, 10}, {0, 0, 0}, 0, 2);   // clearly boundary
  atoms.add_local({10, 10, 15.0}, {0, 0, 0}, 0, 3);  // exactly at hi margin
  atoms.add_local({10, 10, 10}, {0, 0, 0}, 0, 4);    // center

  md::StagePartition part;
  md::classify_partition(atoms, box, 5.0, part);
  // An atom exactly margin from a face is conservatively boundary: its
  // stencil touches the face, so a neighbor could be a ghost.
  EXPECT_EQ(part.boundary, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(part.interior, (std::vector<int>{1, 4}));
  EXPECT_EQ(part.nlocal(), atoms.nlocal);
}

TEST(Partition, EmptyInteriorWhenBoxSmallerThanTwiceMargin) {
  md::Box box({0, 0, 0}, {8, 8, 8});
  md::Atoms atoms;
  for (int i = 0; i < 10; ++i) {
    atoms.add_local({0.8 * i, 4.0, 4.0}, {0, 0, 0}, 0, i);
  }
  md::StagePartition part;
  md::classify_partition(atoms, box, 5.0, part);
  EXPECT_TRUE(part.interior.empty());
  EXPECT_EQ(static_cast<int>(part.boundary.size()), atoms.nlocal);
}

TEST(Partition, EmptyBoundaryWhenAllAtomsDeepInside) {
  md::Box box({0, 0, 0}, {40, 40, 40});
  md::Atoms atoms;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    atoms.add_local({rng.uniform(18.0, 22.0), rng.uniform(18.0, 22.0),
                     rng.uniform(18.0, 22.0)},
                    {0, 0, 0}, 0, i);
  }
  md::StagePartition part;
  md::classify_partition(atoms, box, 5.0, part);
  EXPECT_TRUE(part.boundary.empty());
  EXPECT_EQ(static_cast<int>(part.interior.size()), atoms.nlocal);
}

// ---------------------------------------------------------------------------
// Sim: staged == monolithic for every pair style
// ---------------------------------------------------------------------------

struct GasSystem {
  md::Box box;
  md::Atoms atoms;
  std::vector<double> masses;
};

/// Two-type gas with a minimum separation (keeps every style stable).
GasSystem make_gas(int natoms, double box_len, double min_sep, int ntypes,
                   double t_kelvin, uint64_t seed) {
  GasSystem sys;
  sys.box = md::Box::cubic(box_len);
  sys.masses.assign(static_cast<std::size_t>(ntypes), 20.0);
  Rng rng(seed);
  int placed = 0;
  while (placed < natoms) {
    const Vec3 p{rng.uniform(0.0, box_len), rng.uniform(0.0, box_len),
                 rng.uniform(0.0, box_len)};
    bool ok = true;
    for (int i = 0; i < placed && ok; ++i) {
      ok = sys.box.minimum_image(p, sys.atoms.x[static_cast<std::size_t>(i)])
               .norm() >= min_sep;
    }
    if (!ok) continue;
    sys.atoms.add_local(p, {0, 0, 0}, placed % ntypes, placed);
    ++placed;
  }
  md::thermalize(sys.atoms, sys.masses, t_kelvin, rng);
  return sys;
}

/// Runs the same system staged and monolithic; asserts forces/pe/virial of
/// the first evaluation and the trajectory after `steps` agree.
void expect_staged_equals_monolithic(
    const GasSystem& sys, const std::function<std::shared_ptr<md::Pair>()>& mk,
    int steps, double ftol, double xtol) {
  auto run = [&](bool staged) {
    md::Atoms atoms = sys.atoms;
    md::SimConfig cfg{.dt_fs = 0.5, .skin = 1.0, .rebuild_every = 4};
    cfg.staged = staged;
    return md::Sim(sys.box, std::move(atoms), sys.masses, mk(), cfg);
  };
  md::Sim staged = run(true);
  md::Sim mono = run(false);
  staged.setup();
  mono.setup();

  ASSERT_EQ(staged.atoms().nlocal, mono.atoms().nlocal);
  EXPECT_NEAR(staged.pe(), mono.pe(),
              ftol * std::max(1.0, std::fabs(mono.pe())));
  EXPECT_NEAR(staged.virial(), mono.virial(),
              ftol * std::max(1.0, std::fabs(mono.virial())));
  for (int i = 0; i < staged.atoms().nlocal; ++i) {
    const Vec3 df = staged.atoms().f[static_cast<std::size_t>(i)] -
                    mono.atoms().f[static_cast<std::size_t>(i)];
    EXPECT_LT(df.norm(), ftol) << "force mismatch at atom " << i;
  }

  staged.run(steps);
  mono.run(steps);
  for (int i = 0; i < staged.atoms().nlocal; ++i) {
    const Vec3 dx = sys.box.minimum_image(
        staged.atoms().x[static_cast<std::size_t>(i)],
        mono.atoms().x[static_cast<std::size_t>(i)]);
    EXPECT_LT(dx.norm(), xtol) << "trajectory mismatch at atom " << i;
  }
}

TEST(StagedSim, LjMatchesMonolithic) {
  const GasSystem sys = make_gas(120, 22.0, 3.0, 1, 60.0, 11);
  expect_staged_equals_monolithic(
      sys,
      [] {
        auto p = std::make_shared<md::PairLJ>(1, 5.0);
        p->set_pair(0, 0, 0.0104, 3.4);
        return p;
      },
      12, 1e-11, 1e-9);
}

TEST(StagedSim, MorseMatchesMonolithic) {
  const GasSystem sys = make_gas(100, 20.0, 2.6, 1, 80.0, 13);
  expect_staged_equals_monolithic(
      sys,
      [] {
        auto p = std::make_shared<md::PairMorse>(1, 4.5);
        p->set_pair(0, 0, 0.05, 1.5, 2.8);
        return p;
      },
      12, 1e-11, 1e-9);
}

TEST(StagedSim, EamDefaultAdapterMatchesMonolithic) {
  // EAM keeps the monolithic compute (many-body density coupling) and goes
  // through the default staged adapter: partitions defer, end_step runs
  // compute() after the ghost refresh.  Identical math, identical result.
  const GasSystem sys = make_gas(80, 20.0, 3.2, 1, 50.0, 17);
  expect_staged_equals_monolithic(
      sys, [] { return std::make_shared<md::PairEamSC>(); }, 10, 1e-11, 1e-9);
}

TEST(StagedSim, WaterRefMatchesMonolithic) {
  const GasSystem sys = make_gas(96, 18.0, 1.6, 2, 120.0, 19);
  expect_staged_equals_monolithic(
      sys, [] { return std::make_shared<md::PairWaterRef>(); }, 10, 1e-11,
      1e-9);
}

std::shared_ptr<dp::DPModel> small_dp_model(uint64_t seed) {
  dp::ModelConfig cfg;
  cfg.ntypes = 2;
  cfg.descriptor.rcut = 4.5;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel = {32, 32};
  cfg.descriptor.emb_widths = {8, 16};
  cfg.descriptor.axis_neurons = 4;
  cfg.fit_widths = {24, 24};
  auto model = std::make_shared<dp::DPModel>(cfg);
  Rng rng(seed);
  model->init_random(rng);
  return model;
}

TEST(StagedSim, DpPerAtomMatchesMonolithic) {
  const GasSystem sys = make_gas(64, 16.0, 1.8, 2, 80.0, 23);
  auto model = small_dp_model(29);
  expect_staged_equals_monolithic(
      sys,
      [&] {
        dp::EvalOptions opts;
        opts.block_size = 1;  // legacy per-atom oracle path
        return std::make_shared<dp::PairDeepMD>(model, opts);
      },
      6, 1e-9, 1e-8);
}

TEST(StagedSim, DpBatchedMatchesMonolithic) {
  const GasSystem sys = make_gas(64, 16.0, 1.8, 2, 80.0, 23);
  auto model = small_dp_model(29);
  expect_staged_equals_monolithic(
      sys,
      [&] {
        dp::EvalOptions opts;
        opts.block_size = 16;  // partitions split into batched blocks
        return std::make_shared<dp::PairDeepMD>(model, opts);
      },
      6, 1e-9, 1e-8);
}

TEST(StagedSim, EmptyBoundaryPartitionStillCorrect) {
  // Atoms clustered in the middle of a big box: every atom is interior,
  // the boundary partition is empty, and there are no ghosts at all.
  GasSystem sys;
  sys.box = md::Box::cubic(40.0);
  sys.masses = {20.0};
  Rng rng(31);
  int placed = 0;
  while (placed < 20) {
    // Cluster inside [12, 28]^3: more than rcut + skin = 6 A from every
    // face, so classification puts every atom in the interior.
    const Vec3 p{rng.uniform(12.0, 28.0), rng.uniform(12.0, 28.0),
                 rng.uniform(12.0, 28.0)};
    bool ok = true;
    for (int i = 0; i < placed && ok; ++i) {
      ok = (p - sys.atoms.x[static_cast<std::size_t>(i)]).norm() >= 3.0;
    }
    if (!ok) continue;
    sys.atoms.add_local(p, {0, 0, 0}, 0, placed++);
  }
  md::thermalize(sys.atoms, sys.masses, 40.0, rng);

  auto mk = [] {
    auto p = std::make_shared<md::PairLJ>(1, 5.0);
    p->set_pair(0, 0, 0.0104, 3.4);
    return p;
  };
  md::Atoms atoms = sys.atoms;
  md::SimConfig cfg{.dt_fs = 0.5, .skin = 1.0, .rebuild_every = 4};
  md::Sim sim(sys.box, std::move(atoms), sys.masses, mk(), cfg);
  sim.setup();
  EXPECT_TRUE(sim.partition().boundary.empty());
  EXPECT_EQ(static_cast<int>(sim.partition().interior.size()),
            sim.atoms().nlocal);
  expect_staged_equals_monolithic(sys, mk, 10, 1e-11, 1e-9);
}

// ---------------------------------------------------------------------------
// DomainEngine: staged/overlap == legacy monolithic across ranks
// ---------------------------------------------------------------------------

struct GlobalArrays {
  std::vector<Vec3> x;
  std::vector<Vec3> v;
  std::vector<int> type;
};

GlobalArrays arrays_of(const GasSystem& sys) {
  GlobalArrays g;
  g.x = sys.atoms.x;
  g.v.assign(sys.atoms.v.begin(), sys.atoms.v.begin() + sys.atoms.nlocal);
  g.type.assign(sys.atoms.type.begin(),
                sys.atoms.type.begin() + sys.atoms.nlocal);
  return g;
}

/// Runs the domain engine with the given config on `grid`, returns the
/// gathered (sorted-by-tag) atoms and the total pe after `steps`.
struct EngineRun {
  std::vector<comm::DomainEngine::GlobalAtom> atoms;
  double pe = 0.0;
};

EngineRun run_engine(const GasSystem& sys, const simmpi::CartGrid& grid,
                     const std::function<std::shared_ptr<md::Pair>()>& mk,
                     comm::DomainConfig cfg, int steps) {
  const GlobalArrays g = arrays_of(sys);
  EngineRun out;
  std::mutex mu;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    comm::DomainEngine engine(rank, grid, sys.box, sys.masses, mk(), cfg);
    engine.seed(g.x, g.v, g.type);
    engine.run(steps);
    const auto all = engine.gather_all();
    const double pe = engine.total_pe();
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      out.atoms = all;
      out.pe = pe;
    }
  });
  return out;
}

void expect_runs_equal(const GasSystem& sys, const EngineRun& a,
                       const EngineRun& b, double tol) {
  ASSERT_EQ(a.atoms.size(), b.atoms.size());
  EXPECT_NEAR(a.pe, b.pe, tol * std::max(1.0, std::fabs(b.pe)));
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    ASSERT_EQ(a.atoms[i].tag, b.atoms[i].tag);
    EXPECT_LT(sys.box.minimum_image(a.atoms[i].x, b.atoms[i].x).norm(), tol)
        << "tag " << a.atoms[i].tag;
    EXPECT_LT((a.atoms[i].v - b.atoms[i].v).norm(), tol)
        << "tag " << a.atoms[i].tag;
  }
}

TEST(StagedDomainEngine, LjStagedAndOverlapMatchLegacy) {
  const GasSystem sys = make_gas(160, 24.0, 2.9, 1, 60.0, 37);
  const simmpi::CartGrid grid(2, 2, 2);
  auto mk = [] {
    auto p = std::make_shared<md::PairLJ>(1, 5.0);
    p->set_pair(0, 0, 0.0104, 3.4);
    return p;
  };
  const EngineRun legacy =
      run_engine(sys, grid, mk, {.dt_fs = 1.0, .staged = false}, 15);
  const EngineRun seq = run_engine(
      sys, grid, mk, {.dt_fs = 1.0, .staged = true, .overlap = false}, 15);
  const EngineRun ovl = run_engine(
      sys, grid, mk, {.dt_fs = 1.0, .staged = true, .overlap = true}, 15);
  expect_runs_equal(sys, seq, legacy, 1e-9);
  expect_runs_equal(sys, ovl, legacy, 1e-9);
}

TEST(StagedDomainEngine, MorseOverlapMatchesLegacy) {
  const GasSystem sys = make_gas(120, 22.0, 2.6, 1, 120.0, 41);
  const simmpi::CartGrid grid(2, 1, 1);
  auto mk = [] {
    auto p = std::make_shared<md::PairMorse>(1, 4.0);
    p->set_pair(0, 0, 0.05, 1.5, 2.6);
    return p;
  };
  const EngineRun legacy =
      run_engine(sys, grid, mk, {.dt_fs = 1.0, .staged = false}, 20);
  const EngineRun ovl = run_engine(
      sys, grid, mk, {.dt_fs = 1.0, .staged = true, .overlap = true}, 20);
  expect_runs_equal(sys, ovl, legacy, 1e-9);
}

TEST(StagedDomainEngine, DpBatchedOverlapWithPoolMatchesLegacy) {
  // The real overlap configuration: batched Deep Potential blocks launched
  // async on pool workers while the driver thread runs the halo exchange.
  GasSystem sys = make_gas(96, 19.0, 1.8, 2, 60.0, 43);
  auto model = small_dp_model(47);  // rcut 4.5 fits a 2x1x1 split of 19 A
  const simmpi::CartGrid grid(2, 1, 1);

  const auto mk_with = [&](int block_size, rt::ThreadPool* pool) {
    return [&, block_size, pool]() -> std::shared_ptr<md::Pair> {
      dp::EvalOptions opts;
      opts.block_size = block_size;
      return std::make_shared<dp::PairDeepMD>(model, opts, pool);
    };
  };

  // Per-rank pools so both ranks evaluate concurrently while exchanging.
  std::vector<std::unique_ptr<rt::ThreadPool>> pools;
  for (int r = 0; r < grid.size(); ++r) {
    pools.push_back(std::make_unique<rt::ThreadPool>(3));
  }

  const GlobalArrays g = arrays_of(sys);
  EngineRun legacy, ovl;
  std::mutex mu;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    rt::ThreadPool* pool = pools[static_cast<std::size_t>(rank.rank())].get();
    // Legacy monolithic reference (serial pair, same math).
    comm::DomainEngine ref(rank, grid, sys.box, sys.masses,
                           mk_with(8, nullptr)(), {.dt_fs = 0.5,
                                                   .staged = false});
    ref.seed(g.x, g.v, g.type);
    ref.run(4);
    // Staged + overlap with async pool submission.
    comm::DomainEngine eng(rank, grid, sys.box, sys.masses,
                           mk_with(8, pool)(),
                           {.dt_fs = 0.5, .staged = true, .overlap = true});
    eng.seed(g.x, g.v, g.type);
    eng.run(4);
    const auto ref_all = ref.gather_all();
    const double ref_pe = ref.total_pe();
    const auto eng_all = eng.gather_all();
    const double eng_pe = eng.total_pe();
    if (rank.rank() == 0) {
      std::lock_guard lock(mu);
      legacy.atoms = ref_all;
      legacy.pe = ref_pe;
      ovl.atoms = eng_all;
      ovl.pe = eng_pe;
    }
  });
  expect_runs_equal(sys, ovl, legacy, 1e-7);
}

TEST(StagedDomainEngine, DpPerAtomStagedMatchesLegacy) {
  GasSystem sys = make_gas(72, 19.0, 1.8, 2, 60.0, 53);
  auto model = small_dp_model(59);
  const simmpi::CartGrid grid(2, 1, 1);
  auto mk = [&]() -> std::shared_ptr<md::Pair> {
    dp::EvalOptions opts;
    opts.block_size = 1;
    return std::make_shared<dp::PairDeepMD>(model, opts);
  };
  const EngineRun legacy =
      run_engine(sys, grid, mk, {.dt_fs = 0.5, .staged = false}, 4);
  const EngineRun stg = run_engine(
      sys, grid, mk, {.dt_fs = 0.5, .staged = true, .overlap = true}, 4);
  expect_runs_equal(sys, stg, legacy, 1e-7);
}

// ---------------------------------------------------------------------------
// Building blocks: async pool submission, irecv, EvalOptions validation
// ---------------------------------------------------------------------------

TEST(ThreadPoolAsync, SubmitDynamicRunsEveryItemOnce) {
  rt::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.submit_dynamic(hits.size(), [&](std::size_t i, unsigned) {
    hits[i].fetch_add(1);
  });
  EXPECT_TRUE(pool.async_in_flight());
  // The caller thread is free while workers run — then joins and helps.
  pool.wait_async();
  EXPECT_FALSE(pool.async_in_flight());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolAsync, SingleThreadPoolDrainsInline) {
  rt::ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.submit_dynamic(10, [&](std::size_t i, unsigned tid) {
    EXPECT_EQ(tid, 0u);  // caller drains everything
    sum.fetch_add(static_cast<int>(i));
  });
  pool.wait_async();
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolAsync, CallerWorksWhileJobRuns) {
  rt::ThreadPool pool(3);
  std::atomic<int> done{0};
  pool.submit_dynamic(64, [&](std::size_t, unsigned) {
    done.fetch_add(1);
  });
  // Simulated "communication" on the caller thread while workers compute.
  int local = 0;
  for (int i = 0; i < 1000; ++i) local += i;
  EXPECT_EQ(local, 499500);
  pool.wait_async();
  EXPECT_EQ(done.load(), 64);
}

TEST(SimMpiAsync, IsendIrecvRing) {
  simmpi::run_world(4, [](simmpi::Rank& rank) {
    const int next = (rank.rank() + 1) % rank.size();
    const int prev = (rank.rank() + rank.size() - 1) % rank.size();
    const std::vector<int> payload{rank.rank(), rank.rank() * 10};
    // Post the receive before the send lands: wait() claims it later.
    simmpi::Request rq = rank.irecv(prev, 7);
    rank.isend_vec(next, 7, payload);
    const auto got = rq.wait_vec<int>();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], prev);
    EXPECT_EQ(got[1], prev * 10);
  });
}

TEST(HaloSplit, BeginFinishWithComputeBetweenMatchesOracle) {
  // The split exchange with caller work between begin and finish delivers
  // exactly the brute-force ghost set (same guarantee the blocking
  // exchange_three_stage has — it is begin+finish by construction).
  const simmpi::CartGrid grid(2, 2, 1);
  md::Box global_box({0, 0, 0}, {16, 16, 12});
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    Rng rng(100 + static_cast<uint64_t>(rank.rank()));
    const auto c = grid.coords_of(rank.rank());
    comm::LocalDomain dom;
    dom.sub_box = md::Box({c[0] * 8.0, c[1] * 8.0, 0.0},
                          {(c[0] + 1) * 8.0, (c[1] + 1) * 8.0, 12.0});
    for (int i = 0; i < 25; ++i) {
      comm::HaloAtom a;
      a.x = rng.uniform(dom.sub_box.lo.x, dom.sub_box.hi.x);
      a.y = rng.uniform(dom.sub_box.lo.y, dom.sub_box.hi.y);
      a.z = rng.uniform(dom.sub_box.lo.z, dom.sub_box.hi.z);
      a.type = 0;
      a.tag = rank.rank() * 1000 + i;
      dom.locals.push_back(a);
    }
    comm::HaloExchange hx(rank, grid, global_box, 3.0);
    hx.begin(dom);
    EXPECT_TRUE(hx.in_flight());
    // "Interior evaluation" stand-in on the caller thread.
    volatile double sink = 0;
    for (int i = 0; i < 5000; ++i) {
      sink = sink + std::sqrt(static_cast<double>(i));
    }
    const auto ghosts = hx.finish();
    EXPECT_FALSE(hx.in_flight());
    const auto expected =
        comm::expected_ghosts_bruteforce(rank, global_box, dom, 3.0);
    EXPECT_EQ(comm::ghost_keys(ghosts), comm::ghost_keys(expected));
  });
}

TEST(EvalOptionsValidation, BlockSizeMustBePositive) {
  auto model = small_dp_model(61);
  dp::EvalOptions opts;
  opts.block_size = 0;
  EXPECT_THROW(dp::DPEvaluator(model, opts), Error);
  EXPECT_THROW(dp::PairDeepMD(model, opts), Error);
  opts.block_size = -8;
  EXPECT_THROW(dp::DPEvaluator(model, opts), Error);
  opts.block_size = 1;
  EXPECT_NO_THROW(dp::DPEvaluator(model, opts));
}

TEST(EvalOptionsValidation, PackedGemmToggleMatchesUnpacked) {
  // The packed-B weight panels are a pure layout change: forces with the
  // toggle off (raw row-major gemm_blocked) match the packed default.
  const GasSystem sys = make_gas(48, 15.0, 1.8, 2, 60.0, 67);
  auto model = small_dp_model(71);

  const auto forces_with = [&](bool packed, bool compressed) {
    dp::EvalOptions opts;
    opts.packed_gemm = packed;
    opts.compressed = compressed;
    opts.block_size = 16;
    opts.fitting_gemm = nn::GemmKind::Blocked;  // the kind the toggle gates
    md::Atoms atoms = sys.atoms;
    md::SimConfig cfg{.dt_fs = 0.5, .skin = 1.0};
    md::Sim sim(sys.box, std::move(atoms), sys.masses,
                std::make_shared<dp::PairDeepMD>(model, opts), cfg);
    sim.setup();
    return std::make_pair(sim.pe(), sim.atoms().f);
  };
  for (const bool compressed : {true, false}) {
    const auto [pe_p, f_p] = forces_with(true, compressed);
    const auto [pe_r, f_r] = forces_with(false, compressed);
    EXPECT_NEAR(pe_p, pe_r, 1e-9 * std::max(1.0, std::fabs(pe_r)));
    ASSERT_EQ(f_p.size(), f_r.size());
    for (std::size_t i = 0; i < f_p.size(); ++i) {
      EXPECT_LT((f_p[i] - f_r[i]).norm(), 1e-9) << i;
    }
  }
}

}  // namespace
}  // namespace dpmd
