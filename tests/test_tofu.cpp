#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tofu/mempool.hpp"
#include "tofu/netsim.hpp"
#include "tofu/nic_cache.hpp"
#include "tofu/params.hpp"
#include "tofu/topology.hpp"

namespace dpmd::tofu {
namespace {

// ---------------------------------------------------------------- Torus ----

TEST(Torus, HopsAreSymmetricAndWrap) {
  const Torus t(4, 6, 4);
  EXPECT_EQ(t.nodes(), 96);
  const int a = t.node_of(0, 0, 0);
  const int b = t.node_of(3, 0, 0);
  EXPECT_EQ(t.hops(a, b), 1);  // wraps: distance 3 vs 4-3=1
  EXPECT_EQ(t.hops(b, a), t.hops(a, b));
  const int c = t.node_of(2, 3, 2);
  EXPECT_EQ(t.hops(a, c), 2 + 3 + 2);
}

TEST(Torus, SelfDistanceZero) {
  const Torus t(5, 5, 5);
  for (int n = 0; n < t.nodes(); n += 13) EXPECT_EQ(t.hops(n, n), 0);
}

TEST(Torus, CoordRoundTrip) {
  const Torus t(3, 4, 5);
  for (int n = 0; n < t.nodes(); ++n) {
    const auto c = t.coords_of(n);
    EXPECT_EQ(t.node_of(c[0], c[1], c[2]), n);
  }
}

// ------------------------------------------------------------- NicCache ----

TEST(NicCache, HitsAfterInsert) {
  NicCache cache(4);
  EXPECT_FALSE(cache.access(1));
  EXPECT_TRUE(cache.access(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(NicCache, LruEviction) {
  NicCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.access(1);  // 1 is now MRU
  cache.access(3);  // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_FALSE(cache.access(2));  // was evicted
}

TEST(NicCache, WorkingSetWithinCapacityNeverMisses) {
  NicCache cache(10);
  for (int round = 0; round < 5; ++round) {
    for (int k = 0; k < 10; ++k) cache.access(static_cast<uint64_t>(k));
  }
  // First round: 10 misses.  After that: all hits.
  EXPECT_EQ(cache.misses(), 10u);
  EXPECT_EQ(cache.hits(), 40u);
}

TEST(NicCache, WorkingSetBeyondCapacityThrashes) {
  NicCache cache(10);
  // Cyclic access over 11 keys with LRU = pathological 0% hit rate.
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 11; ++k) cache.access(static_cast<uint64_t>(k));
  }
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(NicCache, KeySpacesDisjoint) {
  EXPECT_NE(NicCache::connection_key(5), NicCache::region_key(5));
}

// -------------------------------------------------------------- Mempool ----

TEST(Mempool, SingleRegionForAllAllocations) {
  RdmaMemoryPool pool(1 << 20);
  const auto a = pool.allocate(100);
  const auto b = pool.allocate(200);
  EXPECT_EQ(a.region_id, b.region_id);
  EXPECT_NE(a.offset, b.offset);
  EXPECT_GE(b.offset, a.offset + a.bytes);
}

TEST(Mempool, AlignmentRespected) {
  RdmaMemoryPool pool(1 << 20, 256);
  pool.allocate(10);
  const auto b = pool.allocate(10);
  EXPECT_EQ(b.offset % 256, 0u);
}

TEST(Mempool, ExhaustionThrows) {
  RdmaMemoryPool pool(1024);
  pool.allocate(1000);
  EXPECT_THROW(pool.allocate(100), dpmd::Error);
  pool.reset();
  EXPECT_NO_THROW(pool.allocate(1000));
}

TEST(Mempool, PerBufferRegistrationMintsDistinctRegions) {
  PerBufferRegistration reg;
  const auto a = reg.allocate(64);
  const auto b = reg.allocate(64);
  EXPECT_NE(a.region_id, b.region_id);
  EXPECT_NE(a.region_id, RdmaMemoryPool::kPoolRegionId);
  EXPECT_EQ(reg.regions_registered(), 2u);
}

// --------------------------------------------------------------- NetSim ----

MachineParams default_params() { return MachineParams{}; }

CommPlan one_message_plan(std::size_t bytes, Api api, int dst = 1) {
  CommPlan plan;
  Phase phase;
  NetMessage m;
  m.src_node = 0;
  m.dst_node = dst;
  m.bytes = bytes;
  m.api = api;
  phase.messages.push_back(m);
  plan.phases.push_back(phase);
  return plan;
}

TEST(NetSim, MoreBytesTakeLonger) {
  const Torus topo(4, 4, 4);
  const auto mp = default_params();
  const double t1 = evaluate(one_message_plan(1000, Api::Utofu), mp, topo).total_s;
  const double t2 = evaluate(one_message_plan(100000, Api::Utofu), mp, topo).total_s;
  EXPECT_GT(t2, t1);
  // Large-message asymptote ~ bytes / bandwidth.
  const double t3 = evaluate(one_message_plan(6800000, Api::Utofu), mp, topo).total_s;
  EXPECT_NEAR(t3, 1.0e-3, 0.15e-3);
}

TEST(NetSim, UtofuBeatsMpiPerMessage) {
  const Torus topo(4, 4, 4);
  const auto mp = default_params();
  const double t_mpi = evaluate(one_message_plan(8, Api::Mpi), mp, topo).total_s;
  const double t_utofu = evaluate(one_message_plan(8, Api::Utofu), mp, topo).total_s;
  EXPECT_GT(t_mpi, t_utofu);
  // The paper reports a 15-27% reduction for realistic message mixes; for a
  // single small message the overhead gap dominates.
  EXPECT_GT((t_mpi - t_utofu) / t_mpi, 0.10);
}

TEST(NetSim, MultiThreadPostingOverlapsOverhead) {
  const Torus topo(4, 6, 4);
  const auto mp = default_params();
  // 24 small messages posted by 1 thread vs 6 threads.
  const auto make = [&](int nthreads) {
    CommPlan plan;
    Phase ph;
    for (int i = 0; i < 24; ++i) {
      NetMessage m;
      m.src_node = 0;
      m.dst_node = 1 + (i % 5);
      m.bytes = 64;
      m.api = Api::Utofu;
      m.post_thread = i % nthreads;
      ph.messages.push_back(m);
    }
    plan.phases.push_back(ph);
    return plan;
  };
  const double t1 = evaluate(make(1), mp, topo).total_s;
  const double t6 = evaluate(make(6), mp, topo).total_s;
  EXPECT_GT(t1, t6);
  EXPECT_GT(t1 / t6, 2.0);  // strong overlap for overhead-dominated traffic
}

TEST(NetSim, FartherNodesPayMoreLatency) {
  const Torus topo(8, 8, 8);
  const auto mp = default_params();
  const double near = evaluate(one_message_plan(8, Api::Utofu, /*dst=*/topo.node_of(1, 0, 0)),
                               mp, topo).total_s;
  const double far = evaluate(one_message_plan(8, Api::Utofu, /*dst=*/topo.node_of(4, 4, 4)),
                              mp, topo).total_s;
  EXPECT_GT(far, near);
}

TEST(NetSim, CopyTimeScalesWithThreadsAndSinks) {
  const Torus topo(2, 2, 2);
  const auto mp = default_params();
  const auto plan_with = [&](int threads, int sinks) {
    CommPlan plan;
    Phase ph;
    CopyOp op;
    op.bytes = 10 << 20;
    op.threads = threads;
    op.numa_targets = sinks;
    ph.copies.push_back(op);
    plan.phases.push_back(ph);
    return plan;
  };
  const double t_1_1 = evaluate(plan_with(1, 1), mp, topo).total_s;
  const double t_12_1 = evaluate(plan_with(12, 1), mp, topo).total_s;
  const double t_48_4 = evaluate(plan_with(48, 4), mp, topo).total_s;
  EXPECT_GT(t_1_1, t_12_1);
  EXPECT_GT(t_12_1, t_48_4);  // 12 threads saturate one CMG sink; 4 CMGs scale
}

TEST(NetSim, SyncCostAdds) {
  const Torus topo(2, 2, 2);
  const auto mp = default_params();
  CommPlan plan;
  Phase ph;
  ph.syncs = 3;
  plan.phases.push_back(ph);
  const auto cost = evaluate(plan, mp, topo);
  EXPECT_DOUBLE_EQ(cost.total_s, 3 * mp.intra_node_sync);
}

TEST(NetSim, NicCacheMissesAddTime) {
  const Torus topo(4, 4, 4);
  const auto mp = default_params();

  // 200 distinct regions cycled twice -> all misses with a small cache.
  CommPlan plan;
  Phase ph;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 200; ++i) {
      NetMessage m;
      m.src_node = 0;
      m.dst_node = 1;
      m.bytes = 8;
      m.api = Api::Utofu;
      m.nic_keys = {NicCache::region_key(static_cast<uint64_t>(i))};
      ph.messages.push_back(m);
    }
  }
  plan.phases.push_back(ph);

  NicCache small(64);
  NicCache big(1024);
  const double t_small = evaluate(plan, mp, topo, &small).total_s;
  const double t_big = evaluate(plan, mp, topo, &big).total_s;
  EXPECT_GT(t_small, t_big);
  // big cache: only cold misses (200); small cache: 400 misses.
  EXPECT_NEAR(t_small - t_big, 200 * mp.nic_miss_penalty, 1e-6);
}

TEST(NetSim, PlanAccounting) {
  CommPlan plan = one_message_plan(1234, Api::Utofu);
  EXPECT_EQ(plan.total_message_count(), 1u);
  EXPECT_EQ(plan.total_bytes(), 1234u);
}

TEST(NetSim, SelfMessageSkipsHopLatencyAndTni) {
  // Intra-node (shared-memory MPI) message: pays the software overhead but
  // no hop latency and no TNI occupancy.
  const Torus topo(2, 2, 2);
  const auto mp = default_params();
  const double local =
      evaluate(one_message_plan(8, Api::Mpi, /*dst=*/0), mp, topo).total_s;
  const double remote =
      evaluate(one_message_plan(8, Api::Mpi, /*dst=*/1), mp, topo).total_s;
  EXPECT_LT(local, remote);
  EXPECT_NEAR(remote - local, mp.hop_latency + mp.tni_injection_gap, 1e-8);
}

// ------------------------------------------------------------ BumpArena ----

TEST(BumpArena, BumpsWithinOneChunkAndAligns) {
  BumpArena arena(1 << 12);
  void* a = arena.allocate(100);
  void* b = arena.allocate(100);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.chunk_count(), 1u);
  void* c = arena.allocate(1, 256);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 256, 0u);
  EXPECT_EQ(arena.allocations(), 3u);
  EXPECT_GT(arena.bytes_used(), 0u);
}

TEST(BumpArena, GrowsInsteadOfThrowing) {
  BumpArena arena(256);
  arena.allocate(200);
  EXPECT_NO_THROW(arena.allocate(200));  // second chunk, not an exception
  EXPECT_GE(arena.chunk_count(), 2u);
  // An oversized request gets a dedicated chunk at least that big.
  arena.allocate(10000);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(BumpArena, ResetRetainsCapacityAndReusesMemory) {
  BumpArena arena(1 << 12);
  void* first = arena.allocate(64);
  arena.allocate(3000);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t hw = arena.high_water();
  EXPECT_GT(hw, 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // chunks retained
  // The warm chunk is re-bumped from the start: same address comes back.
  void* again = arena.allocate(64);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.resets(), 1u);
  EXPECT_EQ(arena.high_water(), hw);

  arena.release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
}

TEST(BumpArena, ArenaAllocatorBacksStdVector) {
  BumpArena arena(1 << 12);
  std::vector<double, ArenaAllocator<double>> v{ArenaAllocator<double>(arena)};
  std::vector<double> ref;
  for (int i = 0; i < 300; ++i) {
    v.push_back(1.5 * i);
    ref.push_back(1.5 * i);
  }
  ASSERT_EQ(v.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(v[i], ref[i]);
  EXPECT_GT(arena.allocations(), 0u);
  // Rebinding (map/node allocations) and copies compare equal on the same
  // arena.
  ArenaAllocator<int> ai(arena);
  ArenaAllocator<double> ad(ai);
  EXPECT_TRUE(ai == ArenaAllocator<int>(ad));
}

}  // namespace
}  // namespace dpmd::tofu
