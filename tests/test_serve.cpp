// Serving subsystem (ISSUE 8): shared ModelRegistry packs, the SimService
// job queue, gang co-scheduling and the per-job arena.  The load-bearing
// contracts:
//
//  * N concurrent simulations sharing one registry produce trajectories
//    BIT-IDENTICAL to N isolated simulations each owning its weights;
//  * gang-merged scoring matches isolated scoring to tight round-off;
//  * arena-backed execution returns results identical to fresh heap
//    allocation;
//  * FIFO ordering and queued-only cancellation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "core/model_pack.hpp"
#include "core/pair_deepmd.hpp"
#include "md/lattice.hpp"
#include "md/sim.hpp"
#include "md/thermostat.hpp"
#include "serve/gang.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "util/random.hpp"

namespace dpmd {
namespace {

dp::ModelConfig small_config(int ntypes = 2) {
  dp::ModelConfig cfg;
  cfg.ntypes = ntypes;
  cfg.descriptor.rcut = 4.5;
  cfg.descriptor.rcut_smth = 1.5;
  cfg.descriptor.sel.assign(static_cast<std::size_t>(ntypes), 48);
  cfg.descriptor.emb_widths = {8, 16, 32};
  cfg.descriptor.axis_neurons = 4;
  return cfg;
}

std::shared_ptr<const dp::DPModel> small_model(int ntypes = 2,
                                               uint64_t seed = 7) {
  auto model = std::make_shared<dp::DPModel>(small_config(ntypes));
  Rng rng(seed);
  model->init_random(rng);
  return model;
}

/// Random system with a minimum separation (keeps s inside the table).
void random_system(int n, double box_len, int ntypes, uint64_t seed,
                   serve::JobSpec& spec) {
  spec.box = md::Box::cubic(box_len);
  Rng rng(seed);
  spec.x.clear();
  spec.type.clear();
  int placed = 0;
  int attempts = 0;
  while (placed < n) {
    DPMD_REQUIRE(++attempts < 100000, "cannot place atoms");
    const Vec3 p{rng.uniform(0.0, box_len), rng.uniform(0.0, box_len),
                 rng.uniform(0.0, box_len)};
    bool ok = true;
    for (const Vec3& q : spec.x) {
      if (spec.box.minimum_image(p, q).norm() < 1.8) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    spec.x.push_back(p);
    spec.type.push_back(
        static_cast<int>(rng.uniform_int(static_cast<uint64_t>(ntypes))));
    ++placed;
  }
}

serve::JobSpec score_spec(const std::string& model, int n, uint64_t seed,
                          double box_len = 11.0) {
  serve::JobSpec spec;
  spec.kind = serve::JobKind::Score;
  spec.model = model;
  random_system(n, box_len, 2, seed, spec);
  return spec;
}

serve::JobSpec traj_spec(const std::string& model, int n, uint64_t seed,
                         int steps) {
  serve::JobSpec spec;
  spec.kind = serve::JobKind::Trajectory;
  spec.model = model;
  random_system(n, 11.0, 2, seed, spec);
  spec.masses = {30.0, 20.0};
  spec.steps = steps;
  spec.dt_fs = 0.25;
  spec.temperature = 80.0;
  spec.langevin_gamma = 0.02;
  spec.seed = seed * 13 + 1;
  return spec;
}

bool bit_equal(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Vec3)) == 0;
}

/// Isolated reference for a Trajectory spec: a private Sim owning its own
/// PairDeepMD built straight from the model — no registry, no service.
serve::JobResult isolated_trajectory(
    const std::shared_ptr<const dp::DPModel>& model,
    const serve::JobSpec& spec) {
  md::Atoms atoms;
  for (std::size_t i = 0; i < spec.x.size(); ++i) {
    Vec3 p = spec.x[i];
    spec.box.wrap(p);
    const Vec3 vel = spec.v.empty() ? Vec3{} : spec.v[i];
    atoms.add_local(p, vel, spec.type[i], static_cast<std::int64_t>(i) + 1);
  }
  auto pair = std::make_shared<dp::PairDeepMD>(model, spec.opts);
  md::Sim sim(spec.box, std::move(atoms), spec.masses, std::move(pair),
              {.dt_fs = spec.dt_fs, .skin = -1.0});
  if (spec.temperature > 0.0)
    sim.set_thermostat(std::make_unique<md::LangevinThermostat>(
        spec.temperature, spec.langevin_gamma, spec.seed));
  sim.run(spec.steps);
  serve::JobResult res;
  const md::Atoms& a = sim.atoms();
  res.energy = sim.pe();
  res.x.assign(a.x.begin(), a.x.begin() + a.nlocal);
  res.v.assign(a.v.begin(), a.v.begin() + a.nlocal);
  res.forces.assign(a.f.begin(), a.f.begin() + a.nlocal);
  return res;
}

// ---------------------------------------------------------------------------
// Registry

TEST(ModelRegistry, PackBuiltOncePerKeyAndShared) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  dp::EvalOptions opts;

  auto p1 = registry->pack("m", opts);
  auto p2 = registry->pack("m", opts);
  EXPECT_EQ(p1.get(), p2.get());  // the same shared artifact, not a copy

  opts.block_size = 8;  // same pack key: block size is a sweep shape knob
  auto p3 = registry->pack("m", opts);
  EXPECT_EQ(p1.get(), p3.get());

  opts.compression_bins = 512;  // different table -> different pack
  auto p4 = registry->pack("m", opts);
  EXPECT_NE(p1.get(), p4.get());

  const auto s = registry->stats();
  EXPECT_EQ(s.models, 1u);
  EXPECT_EQ(s.packs, 2u);
  EXPECT_EQ(s.pack_builds, 2u);
  EXPECT_EQ(s.pack_hits, 2u);
  EXPECT_GT(s.pack_bytes, 0u);
}

TEST(ModelRegistry, RejectsConflictingRegistration) {
  serve::ModelRegistry registry;
  auto m1 = small_model(2, 7);
  registry.add("m", m1);
  registry.add("m", m1);  // idempotent
  EXPECT_THROW(registry.add("m", small_model(2, 8)), std::runtime_error);
  EXPECT_THROW(registry.model("nope"), std::runtime_error);
  EXPECT_TRUE(registry.has("m"));
}

// ---------------------------------------------------------------------------
// The acceptance contract: shared-registry trajectories are bit-identical
// to isolated ones.

TEST(SimService, SharedRegistryTrajectoriesBitIdenticalToIsolated) {
  auto model = small_model();
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", model);

  constexpr int kSims = 3;
  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < kSims; ++i)
    specs.push_back(traj_spec("m", 24, 100 + static_cast<uint64_t>(i), 25));

  // N concurrent sims, one weight copy, workers > 1.
  serve::SimService service(registry, {.workers = 3});
  std::vector<serve::JobId> ids;
  for (const auto& s : specs) ids.push_back(service.submit(s));

  for (int i = 0; i < kSims; ++i) {
    const serve::JobResult got = service.wait(ids[static_cast<std::size_t>(i)]);
    ASSERT_EQ(got.status, serve::JobStatus::Done) << got.error;
    const serve::JobResult ref =
        isolated_trajectory(model, specs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(got.energy, ref.energy);
    EXPECT_TRUE(bit_equal(got.x, ref.x));
    EXPECT_TRUE(bit_equal(got.v, ref.v));
    EXPECT_TRUE(bit_equal(got.forces, ref.forces));
  }
  // All three sims shared one pack build.
  const auto s = service.stats();
  EXPECT_EQ(s.registry.pack_builds, 1u);
  EXPECT_GE(s.registry.pack_hits, 2u);
}

// ---------------------------------------------------------------------------
// Gang co-scheduling numerics (direct, race-free unit check).

TEST(Gang, MergedScoringMatchesIsolated) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());

  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < 4; ++i)
    specs.push_back(score_spec("m", 10 + 3 * i, 200 + static_cast<uint64_t>(i)));
  std::vector<const serve::JobSpec*> ptrs;
  for (const auto& s : specs) ptrs.push_back(&s);
  auto pack = registry->pack("m", specs[0].opts);

  std::vector<serve::ScoreOutput> isolated;
  serve::score_jobs(ptrs, pack, /*gang_block=*/1, nullptr, isolated);
  std::vector<serve::ScoreOutput> merged;
  serve::score_jobs(ptrs, pack, /*gang_block=*/1024, nullptr, merged);

  ASSERT_EQ(isolated.size(), specs.size());
  ASSERT_EQ(merged.size(), specs.size());
  int co_scheduled = 0;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    EXPECT_EQ(isolated[j].gang_size, 1);
    co_scheduled = std::max(co_scheduled, merged[j].gang_size);
    EXPECT_NEAR(merged[j].energy, isolated[j].energy, 1e-10);
    EXPECT_NEAR(merged[j].virial, isolated[j].virial, 1e-10);
    ASSERT_EQ(merged[j].forces.size(), isolated[j].forces.size());
    for (std::size_t i = 0; i < merged[j].forces.size(); ++i)
      for (int d = 0; d < 3; ++d)
        EXPECT_NEAR(merged[j].forces[i][d], isolated[j].forces[i][d], 1e-10);
    for (std::size_t i = 0; i < merged[j].per_atom_energy.size(); ++i)
      EXPECT_NEAR(merged[j].per_atom_energy[i], isolated[j].per_atom_energy[i],
                  1e-10);
  }
  EXPECT_EQ(co_scheduled, 4);  // all four jobs rode one merged sweep
}

TEST(Gang, MergedReducedPrecisionFittingMatchesIsolated) {
  // Gang-merged jobs ride the evaluator's multi-block sweep, whose fitting
  // stage runs all jobs' rows through one concatenated slab per net — with
  // reduced-precision fitting the whole slab is cast and swept at once, so
  // the merged/isolated contract must hold there too.
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());

  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < 4; ++i) {
    auto s = score_spec("m", 10 + 3 * i, 500 + static_cast<uint64_t>(i));
    s.opts.fitting_precision = dp::FittingPrecision::Fp32;
    specs.push_back(std::move(s));
  }
  std::vector<const serve::JobSpec*> ptrs;
  for (const auto& s : specs) ptrs.push_back(&s);
  auto pack = registry->pack("m", specs[0].opts);

  std::vector<serve::ScoreOutput> isolated;
  serve::score_jobs(ptrs, pack, /*gang_block=*/1, nullptr, isolated);
  std::vector<serve::ScoreOutput> merged;
  serve::score_jobs(ptrs, pack, /*gang_block=*/1024, nullptr, merged);

  int co_scheduled = 0;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    co_scheduled = std::max(co_scheduled, merged[j].gang_size);
    EXPECT_NEAR(merged[j].energy, isolated[j].energy, 1e-10);
    ASSERT_EQ(merged[j].forces.size(), isolated[j].forces.size());
    for (std::size_t i = 0; i < merged[j].forces.size(); ++i)
      for (int d = 0; d < 3; ++d)
        EXPECT_NEAR(merged[j].forces[i][d], isolated[j].forces[i][d], 1e-10);
  }
  EXPECT_EQ(co_scheduled, 4);
}

TEST(Gang, EvalOptionsGateIncludesFittingPrecision) {
  // SimService's gang claim merges queued score jobs only while
  // same_eval_options holds — a job asking for the fp64 oracle must never
  // ride a reduced-precision sweep (and vice versa).
  dp::EvalOptions a, b;
  EXPECT_TRUE(serve::same_eval_options(a, b));
  b.fitting_precision = dp::FittingPrecision::Fp32;
  EXPECT_FALSE(serve::same_eval_options(a, b));
  b.fitting_precision = dp::FittingPrecision::Bf16;
  EXPECT_FALSE(serve::same_eval_options(a, b));
}

TEST(Gang, ServiceCoSchedulesQueuedScores) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry,
                            {.workers = 1, .gang_block = 512, .max_gang = 8});

  // A fat blocker keeps the single worker busy while the score jobs queue
  // up behind it, so they are drained in one gang claim.
  const serve::JobId blocker = service.submit(traj_spec("m", 24, 300, 40));
  std::vector<serve::JobId> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(
        service.submit(score_spec("m", 12, 400 + static_cast<uint64_t>(i))));
  service.wait_all();

  EXPECT_EQ(service.wait(blocker).status, serve::JobStatus::Done);
  int max_gang = 0;
  for (const serve::JobId id : ids) {
    const serve::JobResult r = service.wait(id);
    ASSERT_EQ(r.status, serve::JobStatus::Done) << r.error;
    max_gang = std::max(max_gang, r.gang_size);
  }
  // The blocker makes the gang overwhelmingly likely but not guaranteed
  // (the worker could claim score #1 before #2 arrives) — assert on the
  // deterministic invariants only; the numeric contract is pinned above.
  EXPECT_GE(max_gang, 1);
  const auto s = service.stats();
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.registry.pack_builds, 1u);
}

// ---------------------------------------------------------------------------
// Arena: arena-backed execution returns results identical to fresh heap.

TEST(SimService, ArenaReuseMatchesFreshHeap) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());

  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < 12; ++i)
    specs.push_back(score_spec("m", 8 + i, 500 + static_cast<uint64_t>(i)));

  auto run = [&](bool use_arena) {
    serve::SimService service(registry,
                              {.workers = 1, .use_arena = use_arena});
    std::vector<serve::JobId> ids;
    for (const auto& s : specs) ids.push_back(service.submit(s));
    std::vector<serve::JobResult> out;
    for (const serve::JobId id : ids) out.push_back(service.wait(id));
    return out;
  };

  const auto with_arena = run(true);
  const auto with_heap = run(false);
  ASSERT_EQ(with_arena.size(), with_heap.size());
  for (std::size_t j = 0; j < with_arena.size(); ++j) {
    ASSERT_EQ(with_arena[j].status, serve::JobStatus::Done)
        << with_arena[j].error;
    ASSERT_EQ(with_heap[j].status, serve::JobStatus::Done);
    EXPECT_EQ(with_arena[j].energy, with_heap[j].energy);  // bit-identical
    EXPECT_EQ(with_arena[j].virial, with_heap[j].virial);
    EXPECT_TRUE(bit_equal(with_arena[j].forces, with_heap[j].forces));
  }
}

TEST(SimService, ArenaIsReusedAcrossJobs) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});
  std::vector<serve::JobId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(
        service.submit(score_spec("m", 16, 600 + static_cast<uint64_t>(i))));
  service.wait_all();
  const auto s = service.stats();
  EXPECT_EQ(s.completed, 8u);
  EXPECT_GT(s.arena_high_water, 0u);
  // Steady state: the arena's reserve is bounded by its high water (chunks
  // are retained, not re-allocated per job).
  EXPECT_GE(s.arena_reserved, s.arena_high_water);
}

// ---------------------------------------------------------------------------
// Queue semantics.

TEST(SimService, FifoOrderingWithSingleWorker) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1, .coschedule = false});

  std::vector<serve::JobId> ids;
  for (int i = 0; i < 5; ++i)
    ids.push_back(
        service.submit(score_spec("m", 12, 700 + static_cast<uint64_t>(i))));

  // One worker + FIFO: when job k is terminal every earlier job is too.
  const serve::JobResult r2 = service.wait(ids[2]);
  ASSERT_EQ(r2.status, serve::JobStatus::Done) << r2.error;
  EXPECT_EQ(service.status(ids[0]), serve::JobStatus::Done);
  EXPECT_EQ(service.status(ids[1]), serve::JobStatus::Done);
  service.wait_all();
  for (const serve::JobId id : ids)
    EXPECT_EQ(service.status(id), serve::JobStatus::Done);
  EXPECT_EQ(service.stats().completed, 5u);
}

TEST(SimService, CancelQueuedButNotFinished) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  // The blocker occupies the only worker so the target stays Queued.
  const serve::JobId blocker = service.submit(traj_spec("m", 24, 800, 60));
  const serve::JobId target = service.submit(score_spec("m", 12, 801));
  EXPECT_EQ(service.cancel(target), serve::CancelResult::Cancelled);
  EXPECT_EQ(service.cancel(target),  // already cancelled
            serve::CancelResult::AlreadyFinished);
  EXPECT_EQ(service.wait(target).status, serve::JobStatus::Cancelled);

  const serve::JobResult rb = service.wait(blocker);
  ASSERT_EQ(rb.status, serve::JobStatus::Done) << rb.error;
  EXPECT_EQ(service.cancel(blocker),  // terminal jobs cannot be cancelled
            serve::CancelResult::AlreadyFinished);
  EXPECT_EQ(service.cancel(serve::JobId{999999}),
            serve::CancelResult::UnknownId);

  const auto s = service.stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(SimService, FailedJobReportsError) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});
  serve::JobSpec bad = traj_spec("m", 12, 900, 5);
  bad.masses.clear();  // trajectory without masses must fail, not crash
  const serve::JobResult r = service.wait(service.submit(bad));
  EXPECT_EQ(r.status, serve::JobStatus::Failed);
  EXPECT_FALSE(r.error.empty());
  EXPECT_THROW(service.submit(score_spec("nope", 8, 901)),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Relax jobs.

TEST(SimService, RelaxReducesMaxForce) {
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("m", small_model());
  serve::SimService service(registry, {.workers = 1});

  serve::JobSpec relax = score_spec("m", 20, 1000);
  relax.kind = serve::JobKind::Relax;
  relax.max_iters = 60;
  relax.force_tol = 1e-6;  // well below this system's starting fmax
  relax.max_move = 0.01;

  // Reference fmax: score the same system first.
  const serve::JobResult before = service.wait(service.submit(score_spec(
      "m", 20, 1000)));
  ASSERT_EQ(before.status, serve::JobStatus::Done) << before.error;
  double fmax0 = 0.0;
  for (const Vec3& f : before.forces)
    for (int d = 0; d < 3; ++d) fmax0 = std::max(fmax0, std::abs(f[d]));

  const serve::JobResult r = service.wait(service.submit(relax));
  ASSERT_EQ(r.status, serve::JobStatus::Done) << r.error;
  EXPECT_GT(r.iters, 0);
  EXPECT_LT(r.energy, before.energy);  // descent is energy-monotone
  EXPECT_EQ(r.x.size(), relax.x.size());
  (void)fmax0;
}

}  // namespace
}  // namespace dpmd
