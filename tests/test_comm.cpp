#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "comm/domain_engine.hpp"
#include "comm/geometry.hpp"
#include "comm/halo.hpp"
#include "comm/plans.hpp"
#include "md/pair_lj.hpp"
#include "md/thermo.hpp"
#include "util/random.hpp"

namespace dpmd::comm {
namespace {

// -------------------------------------------------------------- geometry ----

TEST(Geometry, PaperNeighborCounts) {
  // The three Fig. 7 sub-box configurations must reproduce the paper's
  // neighbor counts: ranks 26 / 74 / 124, nodes 26 / 26 / 44.
  DecompGeometry geom;
  geom.rcut = 8.0;
  geom.rank_grid = {8, 12, 4};
  geom.ranks_per_node = {2, 2, 1};

  geom.sub_box = {8, 8, 8};  // [1, 1, 1] rcut
  EXPECT_EQ(geom.rank_neighbor_count(), 26);
  EXPECT_EQ(geom.node_neighbor_count(), 26);

  geom.sub_box = {4, 4, 8};  // [0.5, 0.5, 1] rcut
  EXPECT_EQ(geom.rank_neighbor_count(), 74);
  EXPECT_EQ(geom.node_neighbor_count(), 26);

  geom.sub_box = {4, 4, 4};  // [0.5, 0.5, 0.5] rcut
  EXPECT_EQ(geom.rank_neighbor_count(), 124);
  EXPECT_EQ(geom.node_neighbor_count(), 44);
}

TEST(Geometry, GhostRegionVolumesSumToShell) {
  const Vec3 box{5, 7, 9};
  const double rcut = 6.0;
  const auto regions = enumerate_ghost_regions(box, rcut);
  double total = 0.0;
  for (const auto& r : regions) total += r.volume;
  EXPECT_NEAR(total, total_ghost_volume(box, rcut), 1e-9);
}

TEST(Geometry, BandDepthPartitionsCutoff) {
  const double len = 3.0, rcut = 7.5;
  double sum = 0.0;
  for (int m = 1; m <= 3; ++m) sum += band_depth(len, rcut, m);
  EXPECT_NEAR(sum, rcut, 1e-12);
  EXPECT_DOUBLE_EQ(band_depth(len, rcut, 1), 3.0);
  EXPECT_DOUBLE_EQ(band_depth(len, rcut, 3), 1.5);
  EXPECT_DOUBLE_EQ(band_depth(len, rcut, 4), 0.0);
}

TEST(Geometry, PaperGhostEquations) {
  // Paper: at a = 0.5 r, the lb ghost count is ~1.44x the original.
  const double r = 8.0;
  const double a = 0.5 * r;
  const double ratio = eq2_ghost_count(a, r) / eq1_ghost_count(a, r);
  EXPECT_NEAR(ratio, 1.44, 0.03);
}

// ------------------------------------------------- functional exchanges ----

LocalDomain make_domain(simmpi::Rank& rank, const simmpi::CartGrid& grid,
                        const Vec3& sub_len, int atoms_per_rank,
                        uint64_t seed) {
  const auto c = grid.coords_of(rank.rank());
  LocalDomain dom;
  dom.sub_box = md::Box({c[0] * sub_len.x, c[1] * sub_len.y, c[2] * sub_len.z},
                        {(c[0] + 1) * sub_len.x, (c[1] + 1) * sub_len.y,
                         (c[2] + 1) * sub_len.z});
  Rng rng(seed + static_cast<uint64_t>(rank.rank()));
  for (int i = 0; i < atoms_per_rank; ++i) {
    HaloAtom a;
    a.x = rng.uniform(dom.sub_box.lo.x, dom.sub_box.hi.x);
    a.y = rng.uniform(dom.sub_box.lo.y, dom.sub_box.hi.y);
    a.z = rng.uniform(dom.sub_box.lo.z, dom.sub_box.hi.z);
    a.type = i % 2;
    a.tag = static_cast<std::int64_t>(rank.rank()) * 100000 + i;
    dom.locals.push_back(a);
  }
  return dom;
}

TEST(Halo, ThreeStageMatchesBruteForceOneLayer) {
  const simmpi::CartGrid grid(4, 2, 2);
  const Vec3 sub_len{6, 12, 12};
  const md::Box global({0, 0, 0}, {24, 24, 24});
  const double rcut = 5.0;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    const LocalDomain dom = make_domain(rank, grid, sub_len, 30, 7);
    const auto ghosts = exchange_three_stage(rank, grid, global, dom, rcut);
    const auto expected = expected_ghosts_bruteforce(rank, global, dom, rcut);
    EXPECT_EQ(ghost_keys(ghosts), ghost_keys(expected))
        << "rank " << rank.rank();
  });
}

TEST(Halo, ThreeStageMatchesBruteForceTwoLayers) {
  // Sub-box narrower than the cutoff in x: two forwarding rounds.
  const simmpi::CartGrid grid(5, 1, 1);
  const Vec3 sub_len{3, 16, 16};
  const md::Box global({0, 0, 0}, {15, 16, 16});
  const double rcut = 5.0;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    const LocalDomain dom = make_domain(rank, grid, sub_len, 25, 11);
    const auto ghosts = exchange_three_stage(rank, grid, global, dom, rcut);
    const auto expected = expected_ghosts_bruteforce(rank, global, dom, rcut);
    EXPECT_EQ(ghost_keys(ghosts), ghost_keys(expected))
        << "rank " << rank.rank();
  });
}

/// Like make_domain, but over an explicitly non-uniform decomposition:
/// planes[d] lists the slab boundaries of dimension d (the geometry a
/// DomainEngine rebalance event produces).  pad carries the owner rank,
/// exactly as DomainEngine::fill_local_domain stamps it for force return.
LocalDomain make_domain_planes(simmpi::Rank& rank, const simmpi::CartGrid& grid,
                               const std::array<std::vector<double>, 3>& planes,
                               int atoms_per_rank, uint64_t seed) {
  const auto c = grid.coords_of(rank.rank());
  LocalDomain dom;
  dom.sub_box =
      md::Box({planes[0][static_cast<std::size_t>(c[0])],
               planes[1][static_cast<std::size_t>(c[1])],
               planes[2][static_cast<std::size_t>(c[2])]},
              {planes[0][static_cast<std::size_t>(c[0]) + 1],
               planes[1][static_cast<std::size_t>(c[1]) + 1],
               planes[2][static_cast<std::size_t>(c[2]) + 1]});
  Rng rng(seed + static_cast<uint64_t>(rank.rank()));
  for (int i = 0; i < atoms_per_rank; ++i) {
    HaloAtom a;
    a.x = rng.uniform(dom.sub_box.lo.x, dom.sub_box.hi.x);
    a.y = rng.uniform(dom.sub_box.lo.y, dom.sub_box.hi.y);
    a.z = rng.uniform(dom.sub_box.lo.z, dom.sub_box.hi.z);
    a.type = i % 2;
    a.pad = rank.rank();
    a.tag = static_cast<std::int64_t>(rank.rank()) * 100000 + i;
    dom.locals.push_back(a);
  }
  return dom;
}

TEST(Halo, ThreeStageMatchesBruteForceNonUniformSlabs) {
  // Neighboring sub-boxes of different widths (a rebalanced decomposition):
  // the exchanged ghost set must still match the brute-force extended
  // region on every rank.  Every slab stays wider than rcut — the planner's
  // min-width guard guarantees this in the engine — so the round structure
  // is the same on all ranks.
  const simmpi::CartGrid grid(4, 2, 1);
  const std::array<std::vector<double>, 3> planes = {
      std::vector<double>{0.0, 8.0, 20.0, 26.0, 36.0},  // widths 8/12/6/10
      std::vector<double>{0.0, 10.0, 24.0},             // widths 10/14
      std::vector<double>{0.0, 12.0}};
  const md::Box global({0, 0, 0}, {36, 24, 12});
  const double rcut = 4.0;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    const LocalDomain dom = make_domain_planes(rank, grid, planes, 25, 23);
    const auto ghosts = exchange_three_stage(rank, grid, global, dom, rcut);
    const auto expected = expected_ghosts_bruteforce(rank, global, dom, rcut);
    EXPECT_EQ(ghost_keys(ghosts), ghost_keys(expected))
        << "rank " << rank.rank();
  });
}

TEST(Halo, GhostIdentitySurvivesNonUniformExchange) {
  // Force return addresses ghosts by (owner rank, tag): after forwarding
  // through different-width neighbors, every received ghost must still
  // carry its true owner in pad and a tag that decodes to that owner —
  // the invariant DomainEngine::return_ghost_forces relies on.
  const simmpi::CartGrid grid(4, 2, 1);
  const std::array<std::vector<double>, 3> planes = {
      std::vector<double>{0.0, 9.0, 14.0, 25.0, 36.0},  // widths 9/5/11/11
      std::vector<double>{0.0, 13.0, 24.0},             // widths 13/11
      std::vector<double>{0.0, 12.0}};
  const md::Box global({0, 0, 0}, {36, 24, 12});
  const double rcut = 4.5;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    const LocalDomain dom = make_domain_planes(rank, grid, planes, 20, 29);
    const auto ghosts = exchange_three_stage(rank, grid, global, dom, rcut);
    EXPECT_FALSE(ghosts.empty()) << "rank " << rank.rank();
    for (const HaloAtom& g : ghosts) {
      EXPECT_EQ(g.pad, static_cast<std::int32_t>(g.tag / 100000))
          << "rank " << rank.rank() << " ghost tag " << g.tag;
      EXPECT_GE(g.pad, 0);
      EXPECT_LT(g.pad, grid.size());
    }
  });
}

TEST(Halo, NodeBasedCoversRankGhosts) {
  // The node-based exchange (lb layout) must give every rank at least the
  // ghosts the 3-stage exchange provides (its own extended region), drawn
  // from node locals + node ghosts.
  const simmpi::CartGrid grid(4, 4, 2);  // 2x2x1 nodes of 2x2x1 ranks
  const Vec3 sub_len{7, 7, 14};
  const md::Box global({0, 0, 0}, {28, 28, 28});
  const double rcut = 6.0;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    const LocalDomain dom = make_domain(rank, grid, sub_len, 20, 13);
    const auto node = exchange_node_based(rank, grid, global, dom, rcut,
                                          {2, 2, 1}, /*leaders=*/4);
    const auto expected = expected_ghosts_bruteforce(rank, global, dom, rcut);

    // Pool of atoms available to this rank under the lb organization.
    std::vector<HaloAtom> pool = node.node_locals_other;
    pool.insert(pool.end(), node.node_ghosts.begin(), node.node_ghosts.end());
    // Filter the pool to this rank's extended region and compare sets.
    std::vector<HaloAtom> filtered;
    for (const HaloAtom& a : pool) {
      if (a.x >= dom.sub_box.lo.x - rcut && a.x < dom.sub_box.hi.x + rcut &&
          a.y >= dom.sub_box.lo.y - rcut && a.y < dom.sub_box.hi.y + rcut &&
          a.z >= dom.sub_box.lo.z - rcut && a.z < dom.sub_box.hi.z + rcut) {
        filtered.push_back(a);
      }
    }
    EXPECT_EQ(ghost_keys(filtered), ghost_keys(expected))
        << "rank " << rank.rank();
  });
}

TEST(Halo, RecordedPlanRefreshMatchesMovedPositions) {
  // Record a plan during a full exchange, drift every atom (well under any
  // band edge), replay positions-only: every ghost slot must equal its
  // source atom's new position plus the slot's recorded total shift
  // (ghost_old - local_old, an exact box-multiple).
  const simmpi::CartGrid grid(2, 2, 2);
  const Vec3 sub_len{12, 12, 12};
  const md::Box global({0, 0, 0}, {24, 24, 24});
  const double rcut = 4.5;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    LocalDomain dom = make_domain(rank, grid, sub_len, 40, 17);
    HaloExchange hx(rank, grid, global, rcut);
    HaloPlan plan;
    hx.record_plan(&plan);
    hx.begin(dom);
    const auto ghosts = hx.finish();
    ASSERT_TRUE(plan.recorded);
    ASSERT_EQ(plan.nghost, static_cast<int>(ghosts.size()));
    ASSERT_EQ(plan.nlocal, static_cast<int>(dom.locals.size()));
    EXPECT_GT(plan.total_sent_atoms(), 0u);

    // Every rank drifts its atoms deterministically by tag.
    std::vector<Vec3> new_x(dom.locals.size());
    for (std::size_t i = 0; i < dom.locals.size(); ++i) {
      const auto& a = dom.locals[i];
      const double t = static_cast<double>(a.tag % 97);
      new_x[i] = {a.x + 0.01 * std::sin(t), a.y + 0.01 * std::cos(t),
                  a.z + 0.005 * std::sin(2 * t)};
    }
    hx.refresh_begin({new_x.data(), new_x.size()}, plan);
    const auto& refreshed = hx.refresh_finish();
    ASSERT_EQ(refreshed.size(), ghosts.size());

    // Exchange tag -> new position so every rank can resolve any ghost.
    struct TagPos {
      std::int64_t tag;
      double x, y, z;
    };
    std::vector<TagPos> mine;
    for (std::size_t i = 0; i < dom.locals.size(); ++i) {
      mine.push_back({dom.locals[i].tag, new_x[i].x, new_x[i].y, new_x[i].z});
    }
    std::map<std::int64_t, Vec3> global_new;
    for (const auto& part : rank.allgatherv(mine)) {
      for (const auto& tp : part) global_new[tp.tag] = {tp.x, tp.y, tp.z};
    }
    std::map<std::int64_t, Vec3> global_old;
    std::vector<TagPos> mine_old;
    for (const auto& a : dom.locals) {
      mine_old.push_back({a.tag, a.x, a.y, a.z});
    }
    for (const auto& part : rank.allgatherv(mine_old)) {
      for (const auto& tp : part) global_old[tp.tag] = {tp.x, tp.y, tp.z};
    }

    for (std::size_t g = 0; g < ghosts.size(); ++g) {
      const Vec3 shift =
          Vec3{ghosts[g].x, ghosts[g].y, ghosts[g].z} - global_old[ghosts[g].tag];
      const Vec3 want = global_new[ghosts[g].tag] + shift;
      EXPECT_LT((refreshed[g] - want).norm(), 1e-12)
          << "rank " << rank.rank() << " ghost " << g;
    }
  });
}

TEST(Halo, NodeExchangeSplitMatchesBlocking) {
  // begin/finish staging of the node-based exchange: identical result to
  // the blocking wrapper, with in_flight() tracking the window.
  const simmpi::CartGrid grid(4, 4, 1);  // 2x2 nodes of 2x2x1 ranks
  const Vec3 sub_len{7, 7, 22};
  const md::Box global({0, 0, 0}, {28, 28, 22});
  const double rcut = 5.0;

  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    const LocalDomain dom = make_domain(rank, grid, sub_len, 25, 19);
    const auto blocking =
        exchange_node_based(rank, grid, global, dom, rcut, {2, 2, 1}, 4);

    NodeExchange nx(rank, grid, global, rcut, {2, 2, 1}, 4);
    EXPECT_FALSE(nx.in_flight());
    nx.begin(dom);
    EXPECT_TRUE(nx.in_flight());
    // (compute would run here: only step-1 sends are in the mailboxes)
    const auto staged = nx.finish();
    EXPECT_FALSE(nx.in_flight());

    EXPECT_EQ(ghost_keys(staged.node_ghosts),
              ghost_keys(blocking.node_ghosts));
    EXPECT_EQ(ghost_keys(staged.node_locals_other),
              ghost_keys(blocking.node_locals_other));
  });
}

TEST(Halo, NodeBasedLeaderVariantsAgree) {
  const simmpi::CartGrid grid(4, 4, 1);
  const Vec3 sub_len{8, 8, 30};
  const md::Box global({0, 0, 0}, {32, 32, 30});
  const double rcut = 7.0;

  for (const int leaders : {1, 2, 4}) {
    simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
      const LocalDomain dom = make_domain(rank, grid, sub_len, 15, 17);
      const auto node = exchange_node_based(rank, grid, global, dom, rcut,
                                            {2, 2, 1}, leaders);
      // Ghost set of the node box must be identical however many leaders
      // split the sends.
      const auto node4 = exchange_node_based(rank, grid, global, dom, rcut,
                                             {2, 2, 1}, 4);
      EXPECT_EQ(ghost_keys(node.node_ghosts), ghost_keys(node4.node_ghosts))
          << "rank " << rank.rank() << " leaders " << leaders;
    });
  }
}

// ------------------------------------------------------------ plan costs ----

DecompGeometry fig7_geometry(double q_x, double q_y, double q_z,
                             double rcut) {
  DecompGeometry geom;
  geom.rcut = rcut;
  geom.sub_box = {q_x * rcut, q_y * rcut, q_z * rcut};
  geom.rank_grid = {8, 12, 4};
  geom.ranks_per_node = {2, 2, 1};
  return geom;
}

TEST(Plans, MessageCountsMatchGeometry) {
  const auto geom = fig7_geometry(0.5, 0.5, 0.5, 8.0);
  SchemeConfig cfg;
  cfg.include_reverse = false;

  const auto p2p = plan_p2p(geom, cfg);
  const std::size_t nranks = 8 * 12 * 4;
  EXPECT_EQ(p2p.total_message_count(), nranks * 124);

  const auto node = plan_node_based(geom, cfg);
  const std::size_t nnodes = 4 * 6 * 4;
  EXPECT_EQ(node.total_message_count(), nnodes * 44);

  const auto stage = plan_three_stage(geom, cfg);
  // 2 layers per dim = 6 rounds, 2 messages per rank per round.
  EXPECT_EQ(stage.phases.size(), 6u);
  EXPECT_EQ(stage.total_message_count(), nranks * 12);
}

TEST(Plans, ThreeStageVolumeConservation) {
  // Across all rounds a rank transmits exactly its share of the ghost shell
  // bytes; totals must match the analytic ghost volume.
  const auto geom = fig7_geometry(0.5, 0.5, 1.0, 8.0);
  SchemeConfig cfg;
  cfg.include_reverse = false;
  const auto plan = plan_three_stage(geom, cfg);
  const std::size_t nranks = 8 * 12 * 4;
  const double shell = total_ghost_volume(geom.sub_box, geom.rcut);
  const double expected_bytes =
      shell * cfg.atom_density * cfg.bytes_per_atom_forward * nranks;
  EXPECT_NEAR(static_cast<double>(plan.total_bytes()), expected_bytes,
              0.02 * expected_bytes);
}

TEST(Plans, NodeBasedWinsInStrongScalingLosesAtLargeBoxes) {
  // The Fig. 7 crossover: at [1,1,1] rcut (bandwidth-bound) the classic
  // patterns beat node-based; at [0.5,0.5,0.5] (latency-bound) node-based
  // wins decisively.
  const tofu::MachineParams mp;
  SchemeConfig utofu;
  SchemeConfig mpi;
  mpi.api = tofu::Api::Mpi;

  {
    const auto geom = fig7_geometry(1, 1, 1, 8.0);
    const double t3 = cost_of(plan_three_stage(geom, utofu), geom, mp).total_s;
    const double tn = cost_of(plan_node_based(geom, utofu), geom, mp).total_s;
    EXPECT_LT(t3, tn);
  }
  {
    const auto geom = fig7_geometry(0.5, 0.5, 0.5, 8.0);
    const double baseline =
        cost_of(plan_three_stage(geom, mpi), geom, mp).total_s;
    const double t3 = cost_of(plan_three_stage(geom, utofu), geom, mp).total_s;
    const double tp = cost_of(plan_p2p(geom, utofu), geom, mp).total_s;
    const double tn = cost_of(plan_node_based(geom, utofu), geom, mp).total_s;
    EXPECT_LT(tn, t3);
    EXPECT_LT(tn, tp);
    EXPECT_LT(tn, 0.5 * baseline);  // paper: ~0.19-0.24x of baseline
  }
}

TEST(Plans, FourLeadersBeatFewer) {
  const tofu::MachineParams mp;
  const auto geom = fig7_geometry(0.5, 0.5, 0.5, 8.0);
  SchemeConfig cfg;
  double last = 0.0;
  for (const int leaders : {1, 2, 4}) {
    cfg.leaders = leaders;
    const double t = cost_of(plan_node_based(geom, cfg), geom, mp).total_s;
    if (leaders > 1) EXPECT_LT(t, last) << leaders;
    last = t;
  }
}

TEST(Plans, SingleCommThreadSlower) {
  const tofu::MachineParams mp;
  const auto geom = fig7_geometry(0.5, 0.5, 0.5, 8.0);
  SchemeConfig multi;
  SchemeConfig single;
  single.comm_threads_per_leader = 1;
  const double tm = cost_of(plan_node_based(geom, multi), geom, mp).total_s;
  const double ts = cost_of(plan_node_based(geom, single), geom, mp).total_s;
  EXPECT_GT(ts, tm);
  // Paper: 10-26% penalty.
  EXPECT_LT(ts / tm, 1.8);
}

TEST(Plans, LbBroadcastCopyBounded) {
  // Paper Fig. 7 finds lb-4l vs ref-4l within a few percent; our model
  // charges the 4x ghost broadcast at the effective NoC sink bandwidth and
  // is more pessimistic (documented in EXPERIMENTS.md).  Assert the copy
  // stays a bounded fraction, not a blow-up.
  const tofu::MachineParams mp;
  const auto geom = fig7_geometry(0.5, 0.5, 0.5, 8.0);
  SchemeConfig lb;
  SchemeConfig ref;
  ref.lb_broadcast = false;
  const double tl = cost_of(plan_node_based(geom, lb), geom, mp).total_s;
  const double tr = cost_of(plan_node_based(geom, ref), geom, mp).total_s;
  EXPECT_GE(tl, tr);
  EXPECT_LT(tl / tr, 2.5);
}

TEST(Plans, UtofuReducesOverheadVsMpi) {
  const tofu::MachineParams mp;
  const auto geom = fig7_geometry(0.5, 0.5, 1.0, 8.0);
  SchemeConfig utofu;
  SchemeConfig mpi;
  mpi.api = tofu::Api::Mpi;
  const double tu = cost_of(plan_three_stage(geom, utofu), geom, mp).total_s;
  const double tm = cost_of(plan_three_stage(geom, mpi), geom, mp).total_s;
  // Paper §III-A2: uTofu cuts 15-27% vs the MPI API.
  const double saving = (tm - tu) / tm;
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.75);
}

// ------------------------------------------- non-uniform migration ----

TEST(Migration, OwnershipConsistentOnRebalancedGrid) {
  // Live engine on a corner-heavy system with rebalancing: after plane
  // shifts and migrations, every rank's locals must sit inside its (now
  // non-uniform) sub-box, the sub-box must agree with the shared plane
  // arrays, and no tag may be lost or duplicated.
  md::Box box = md::Box::cubic(32.0);
  std::vector<Vec3> x;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      for (int k = 0; k < 4; ++k) {
        x.push_back({1.5 + 3.4 * i, 1.5 + 3.4 * j, 1.5 + 3.4 * k});
      }
    }
  }
  md::Atoms seed_atoms;
  for (std::size_t i = 0; i < x.size(); ++i) {
    seed_atoms.add_local(x[i], {0, 0, 0}, 0, static_cast<std::int64_t>(i));
  }
  Rng rng(101);
  const std::vector<double> masses = {40.0};
  md::thermalize(seed_atoms, masses, 80.0, rng);
  const std::vector<Vec3> v(seed_atoms.v.begin(),
                            seed_atoms.v.begin() + seed_atoms.nlocal);
  const std::vector<int> type(seed_atoms.type.begin(),
                              seed_atoms.type.begin() + seed_atoms.nlocal);

  const simmpi::CartGrid grid(2, 2, 1);
  std::mutex mu;
  std::set<std::int64_t> tags;
  int total = 0;
  int rebalances = 0;
  simmpi::run_world(grid.size(), [&](simmpi::Rank& rank) {
    auto pair = std::make_shared<md::PairLJ>(1, 5.0);
    pair->set_pair(0, 0, 0.0104, 3.4);
    // rebuild_every = 1: every step ends on a freshly migrated state, so
    // the containment check below is an invariant, not a race with drift.
    comm::DomainEngine engine(rank, grid, box, masses, pair,
                              {.dt_fs = 1.0, .skin = 0.0, .rebuild_every = 1,
                               .rebalance_every = 5,
                               .rebalance_damping = 1.0});
    engine.seed(x, v, type);
    engine.run(25);

    const auto c = grid.coords_of(rank.rank());
    const auto& planes = engine.planes();
    const md::Box& sub = engine.sub_box();
    EXPECT_EQ(sub.lo.x, planes[0][static_cast<std::size_t>(c[0])]);
    EXPECT_EQ(sub.hi.x, planes[0][static_cast<std::size_t>(c[0]) + 1]);
    EXPECT_EQ(sub.lo.y, planes[1][static_cast<std::size_t>(c[1])]);
    EXPECT_EQ(sub.hi.y, planes[1][static_cast<std::size_t>(c[1]) + 1]);
    const auto& atoms = engine.atoms();
    for (int i = 0; i < atoms.nlocal; ++i) {
      Vec3 p = atoms.x[static_cast<std::size_t>(i)];
      box.wrap(p);
      EXPECT_TRUE(sub.contains(p))
          << "rank " << rank.rank() << " atom " << i;
    }
    std::lock_guard lock(mu);
    total += atoms.nlocal;
    for (int i = 0; i < atoms.nlocal; ++i) {
      tags.insert(atoms.tag[static_cast<std::size_t>(i)]);
    }
    if (rank.rank() == 0) rebalances = engine.rebalance_count();
  });
  EXPECT_EQ(total, static_cast<int>(x.size()));
  EXPECT_EQ(tags.size(), x.size());
  EXPECT_GE(rebalances, 1);
}

}  // namespace
}  // namespace dpmd::comm
