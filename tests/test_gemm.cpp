#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "gemm/gemm.hpp"
#include "util/half.hpp"
#include "util/random.hpp"
#include "util/vtanh.hpp"

namespace dpmd::gemm {
namespace {

std::vector<double> random_matrix(int rows, int cols, Rng& rng,
                                  double scale = 1.0) {
  std::vector<double> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = rng.uniform(-scale, scale);
  return m;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::fabs(a[i] - b[i]));
  }
  return d;
}

// Shape sweep: (M, N, K) covering the fitting-net regimes the paper cares
// about — tall-skinny M<=3 (strong scaling, 1-2 atoms/core) through batch
// sizes of the 8 atoms/core configuration, plus ragged odd shapes.
class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GemmShapes, BlockedMatchesRef) {
  const auto [m, n, k] = GetParam();
  Rng rng(100 + m * 7 + n * 3 + k);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  gemm_blocked(a.data(), b.data(), c.data(), m, n, k);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-11);
}

TEST_P(GemmShapes, SveGemmMatchesRef) {
  const auto [m, n, k] = GetParam();
  Rng rng(200 + m * 7 + n * 3 + k);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  sve_gemm(a.data(), b.data(), c.data(), m, n, k);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-11);
}

TEST_P(GemmShapes, AutoDispatchMatchesRef) {
  const auto [m, n, k] = GetParam();
  Rng rng(300 + m * 7 + n * 3 + k);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  gemm_auto(a.data(), b.data(), c.data(), m, n, k);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-11);
}

TEST_P(GemmShapes, NtMatchesTransposedNn) {
  const auto [m, n, k] = GetParam();
  Rng rng(400 + m * 7 + n * 3 + k);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);  // NN operand
  std::vector<double> bt(static_cast<std::size_t>(n) * k);
  transpose(b.data(), bt.data(), k, n);  // bt is n x k
  std::vector<double> c_nn(static_cast<std::size_t>(m) * n);
  std::vector<double> c_nt(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_nn.data(), m, n, k);
  gemm_nt_ref(a.data(), bt.data(), c_nt.data(), m, n, k);
  EXPECT_LT(max_abs_diff(c_nn, c_nt), 1e-11);
}

TEST_P(GemmShapes, VectorizedNtMatchesRef) {
  const auto [m, n, k] = GetParam();
  Rng rng(500 + m * 7 + n * 3 + k);
  const auto a = random_matrix(m, k, rng);
  const auto bt = random_matrix(n, k, rng);
  std::vector<double> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  gemm_nt_ref(a.data(), bt.data(), c_ref.data(), m, n, k);
  gemm_nt(a.data(), bt.data(), c.data(), m, n, k);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-11);
}

TEST_P(GemmShapes, PackedMatchesRef) {
  // gemm_packed consumes B in the pack_b panel layout (full NR panels +
  // transposed remainder columns) — the weight-matrix fast path.
  const auto [m, n, k] = GetParam();
  Rng rng(700 + m * 7 + n * 3 + k);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> bp(b.size());
  pack_b(b.data(), bp.data(), k, n);
  std::vector<double> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  gemm_packed(a.data(), bp.data(), c.data(), m, n, k);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-11);
}

TEST_P(GemmShapes, TnMatchesTransposedRef) {
  // gemm_tn consumes A stored K x M (the packed-row layout of the
  // descriptor contraction and the training weight gradient).
  const auto [m, n, k] = GetParam();
  Rng rng(600 + m * 7 + n * 3 + k);
  const auto at = random_matrix(k, m, rng);  // K x M storage
  const auto b = random_matrix(k, n, rng);
  std::vector<double> a(static_cast<std::size_t>(m) * k);
  transpose(at.data(), a.data(), k, m);  // logical A, M x K
  std::vector<double> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  gemm_tn(at.data(), b.data(), c.data(), m, n, k);
  EXPECT_LT(max_abs_diff(c, c_ref), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 240, 240},
                      std::tuple{2, 240, 240}, std::tuple{3, 240, 240},
                      std::tuple{3, 240, 1600}, std::tuple{8, 64, 64},
                      std::tuple{17, 33, 5}, std::tuple{96, 240, 240},
                      std::tuple{100, 100, 100}, std::tuple{5, 1, 7},
                      std::tuple{1, 7, 1}, std::tuple{64, 128, 256},
                      // K-blocked regime (k > kKc) and the contraction
                      // shapes: A = R~^T G (m=4, n=m1, k=rows), dG = R~ dA
                      // (k=4), D = A^T A (n=m2=16, k=4), dR = G dA^T (n=4).
                      std::tuple{21, 240, 1600}, std::tuple{43, 240, 1600},
                      std::tuple{43, 1600, 240}, std::tuple{4, 100, 57},
                      std::tuple{57, 100, 4}, std::tuple{100, 16, 4},
                      std::tuple{57, 4, 100}, std::tuple{4, 100, 1}));

TEST(Gemm, TnAlphaBetaHandling) {
  Rng rng(6);
  const int m = 7, n = 26, k = 31;
  const auto at = random_matrix(k, m, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> a(static_cast<std::size_t>(m) * k);
  transpose(at.data(), a.data(), k, m);
  auto c = random_matrix(m, n, rng);
  auto expected = c;
  std::vector<double> ab(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), ab.data(), m, n, k);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = 1.5 * ab[i] + 2.0 * expected[i];
  }
  gemm_tn(at.data(), b.data(), c.data(), m, n, k, 1.5, 2.0);
  EXPECT_LT(max_abs_diff(c, expected), 1e-11);
}

TEST(Gemm, NtAlphaBetaHandling) {
  Rng rng(7);
  const int m = 9, n = 6, k = 40;
  const auto a = random_matrix(m, k, rng);
  const auto bt = random_matrix(n, k, rng);
  auto c = random_matrix(m, n, rng);
  auto expected = c;
  std::vector<double> ab(static_cast<std::size_t>(m) * n);
  gemm_nt_ref(a.data(), bt.data(), ab.data(), m, n, k);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = 0.25 * ab[i] + 3.0 * expected[i];
  }
  gemm_nt(a.data(), bt.data(), c.data(), m, n, k, 0.25, 3.0);
  EXPECT_LT(max_abs_diff(c, expected), 1e-11);
}

TEST(Gemm, AlphaBetaHandling) {
  Rng rng(1);
  const int m = 4, n = 5, k = 6;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  auto c0 = random_matrix(m, n, rng);

  // c = 2*A*B + 0.5*c  against explicit reference.
  auto expected = c0;
  std::vector<double> ab(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), ab.data(), m, n, k);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = 2.0 * ab[i] + 0.5 * expected[i];
  }

  for (int variant = 0; variant < 3; ++variant) {
    auto c = c0;
    switch (variant) {
      case 0: gemm_ref(a.data(), b.data(), c.data(), m, n, k, 2.0, 0.5); break;
      case 1:
        gemm_blocked(a.data(), b.data(), c.data(), m, n, k, 2.0, 0.5);
        break;
      case 2: sve_gemm(a.data(), b.data(), c.data(), m, n, k, 2.0, 0.5); break;
    }
    EXPECT_LT(max_abs_diff(c, expected), 1e-11) << "variant " << variant;
  }
}

TEST(Gemm, BetaZeroIgnoresGarbageInC) {
  Rng rng(2);
  const int m = 3, n = 4, k = 5;
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> c(static_cast<std::size_t>(m) * n,
                        std::numeric_limits<double>::quiet_NaN());
  gemm_blocked(a.data(), b.data(), c.data(), m, n, k, 1.0, 0.0);
  for (const double v : c) EXPECT_FALSE(std::isnan(v));
}

TEST(Gemm, FloatInstantiation) {
  Rng rng(3);
  const int m = 2, n = 16, k = 8;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  sve_gemm(a.data(), b.data(), c.data(), m, n, k);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-5f);
  }
}

TEST(Gemm, HalfWeightsErrorBounded) {
  Rng rng(4);
  const int m = 2, n = 240, k = 240;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<Half> bh(b.size());
  convert_to_half(b.data(), bh.data(), b.size());

  std::vector<float> c_ref(static_cast<std::size_t>(m) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  gemm_halfw(a.data(), bh.data(), c.data(), m, n, k);

  // Error budget: each b entry carries <= 2^-11 relative error; with |a|,
  // |b| <= 1 the accumulated error over k=240 terms stays well under
  // 240 * 2^-11 ~ 0.12.
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 0.12f);
  }
}

TEST(Gemm, HalfWeightsExactForHalfRepresentable) {
  // If B is exactly representable in fp16, the fp16 path must agree with
  // fp32 to accumulation roundoff.
  const int m = 1, n = 8, k = 4;
  std::vector<float> a = {1.0f, 0.5f, -2.0f, 4.0f};
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>((static_cast<int>(i) % 5) - 2) * 0.25f;
  }
  std::vector<Half> bh(b.size());
  convert_to_half(b.data(), bh.data(), b.size());
  std::vector<float> c_ref(n), c(n);
  gemm_ref(a.data(), b.data(), c_ref.data(), m, n, k);
  gemm_halfw(a.data(), bh.data(), c.data(), m, n, k);
  for (int i = 0; i < n; ++i) EXPECT_EQ(c[i], c_ref[i]);
}

// ------------------------------------------------------- gemm_batched ----

/// Unfused reference for one batched item: gemm_auto into c, then the
/// Epilogue table of gemm.hpp applied as separate whole-slab passes (the
/// row passes DenseLayer runs when fusion is off).  gemm_batched promises
/// bitwise identity against exactly this.
void batched_item_ref(const GemmBatchItem<double>& it, const double* b,
                      const double* bp, const double* bias, int n, int k,
                      Epilogue ep) {
  gemm_auto(it.a, b, bp, it.c, it.m, n, k);
  const std::size_t mn = static_cast<std::size_t>(it.m) * n;
  switch (ep) {
    case Epilogue::None:
      break;
    case Epilogue::Bias:
    case Epilogue::BiasTanh:
    case Epilogue::BiasTanhSkip:
      for (int i = 0; i < it.m; ++i) {
        double* cr = it.c + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) cr[j] += bias[j];
        if (ep != Epilogue::Bias) vtanh(cr, static_cast<std::size_t>(n));
      }
      if (ep == Epilogue::BiasTanhSkip) {
        for (std::size_t i = 0; i < mn; ++i) it.c2[i] = it.c[i] + it.skip[i];
      } else if (it.c2 != nullptr) {
        for (std::size_t i = 0; i < mn; ++i) it.c2[i] = it.c[i];
      }
      break;
    case Epilogue::GradSkip:
      for (std::size_t i = 0; i < mn; ++i) it.c[i] += it.skip[i];
      [[fallthrough]];
    case Epilogue::Grad:
      if (it.c2 != nullptr) {
        for (std::size_t i = 0; i < mn; ++i) {
          it.c2[i] = it.c[i] * (1.0 - it.c2[i] * it.c2[i]);
        }
      }
      break;
  }
}

/// Per-item operand storage for a batched sweep test.
struct BatchedFixture {
  std::vector<int> ms;
  int n = 0, k = 0;
  std::vector<std::vector<double>> a, c, c2, skip;
  std::vector<double> b, bp, bias;
  std::vector<GemmBatchItem<double>> items;

  BatchedFixture(std::vector<int> ms_in, int n_in, int k_in, Rng& rng)
      : ms(std::move(ms_in)), n(n_in), k(k_in) {
    b = random_matrix(k, n, rng);
    bp.resize(b.size());
    pack_b(b.data(), bp.data(), k, n);
    bias = random_matrix(1, n, rng);
    for (const int m : ms) {
      a.push_back(random_matrix(m, k, rng));
      // tanh-range c2/skip seeds so Grad's (1 - h^2) stays well-scaled
      c.push_back(random_matrix(m, n, rng, 0.9));
      c2.push_back(random_matrix(m, n, rng, 0.9));
      skip.push_back(random_matrix(m, n, rng, 0.9));
    }
  }

  /// Builds the item list over fresh copies of the c/c2 seeds (both the
  /// fused run and the reference mutate them in place).
  std::vector<GemmBatchItem<double>> make_items(
      std::vector<std::vector<double>>& cw,
      std::vector<std::vector<double>>& c2w, bool with_c2) {
    cw = c;
    c2w = c2;
    std::vector<GemmBatchItem<double>> out;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      GemmBatchItem<double> it;
      it.a = a[i].data();
      it.c = cw[i].data();
      it.c2 = with_c2 ? c2w[i].data() : nullptr;
      it.skip = skip[i].data();
      it.m = ms[i];
      out.push_back(it);
    }
    return out;
  }
};

class GemmBatchedEpilogues : public ::testing::TestWithParam<Epilogue> {};

TEST_P(GemmBatchedEpilogues, BitwiseMatchesLoopedAutoPlusUnfused) {
  const Epilogue ep = GetParam();
  // m values straddle the sve threshold (<= 3), the MR = 8 register tile,
  // its row remainders, and the real water-256 per-type counts; k = 300
  // crosses the kKc K-chunk boundary, n = 52 leaves remainder columns
  // beyond the packed panels.
  Rng rng(900 + static_cast<int>(ep));
  BatchedFixture fx({1, 3, 5, 8, 21, 43, 7}, 52, 300, rng);
  for (const bool packed : {false, true}) {
    for (const bool with_c2 : {true, false}) {
      // c2 is mandatory only for BiasTanhSkip; every other epilogue must
      // tolerate a missing secondary slab.
      if (!with_c2 && ep == Epilogue::BiasTanhSkip) continue;
      std::vector<std::vector<double>> c_f, c2_f, c_r, c2_r;
      auto fused = fx.make_items(c_f, c2_f, with_c2);
      auto ref = fx.make_items(c_r, c2_r, with_c2);
      const double* bp = packed ? fx.bp.data() : nullptr;
      gemm_batched(fused.data(), static_cast<int>(fused.size()), fx.b.data(),
                   bp, fx.bias.data(), fx.n, fx.k, ep);
      for (auto& it : ref) {
        batched_item_ref(it, fx.b.data(), bp, fx.bias.data(), fx.n, fx.k,
                         ep);
      }
      for (std::size_t i = 0; i < fused.size(); ++i) {
        EXPECT_EQ(c_f[i], c_r[i])
            << "item " << i << " packed " << packed << " c2 " << with_c2;
        EXPECT_EQ(c2_f[i], c2_r[i])
            << "item " << i << " packed " << packed << " c2 " << with_c2;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEpilogues, GemmBatchedEpilogues,
                         ::testing::Values(Epilogue::None, Epilogue::Bias,
                                           Epilogue::BiasTanh,
                                           Epilogue::BiasTanhSkip,
                                           Epilogue::Grad,
                                           Epilogue::GradSkip));

TEST(GemmBatched, FittingLayerShapesBitwise) {
  // The production first-layer shape: per-type row counts of water-256
  // sweeps against the 1600 x 240 weight, bias + tanh + identity resnet.
  Rng rng(77);
  BatchedFixture fx({21, 43, 22, 42}, 240, 1600, rng);
  std::vector<std::vector<double>> c_f, c2_f, c_r, c2_r;
  auto fused = fx.make_items(c_f, c2_f, true);
  auto ref = fx.make_items(c_r, c2_r, true);
  gemm_batched(fused.data(), static_cast<int>(fused.size()), fx.b.data(),
               fx.bp.data(), fx.bias.data(), fx.n, fx.k,
               Epilogue::BiasTanhSkip);
  for (auto& it : ref) {
    batched_item_ref(it, fx.b.data(), fx.bp.data(), fx.bias.data(), fx.n,
                     fx.k, Epilogue::BiasTanhSkip);
  }
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(c_f[i], c_r[i]) << "item " << i;
    EXPECT_EQ(c2_f[i], c2_r[i]) << "item " << i;
  }
}

TEST(GemmBatched, HeadShapesAndEmptyItems) {
  // The energy head's forward is matrix-vector (n = 1), its backward a
  // rank-1 outer product (k = 1); both get dedicated rungs in batched_one.
  // m = 0 items must be skipped without touching their outputs.
  Rng rng(78);
  {
    BatchedFixture fx({4, 0, 9, 1}, 1, 240, rng);
    std::vector<std::vector<double>> c_f, c2_f, c_r, c2_r;
    auto fused = fx.make_items(c_f, c2_f, true);
    auto ref = fx.make_items(c_r, c2_r, true);
    gemm_batched(fused.data(), static_cast<int>(fused.size()), fx.b.data(),
                 static_cast<const double*>(nullptr), fx.bias.data(), fx.n,
                 fx.k, Epilogue::Bias);
    for (auto& it : ref) {
      if (it.m > 0) {
        batched_item_ref(it, fx.b.data(), nullptr, fx.bias.data(), fx.n,
                         fx.k, Epilogue::Bias);
      }
    }
    for (std::size_t i = 0; i < fused.size(); ++i) {
      EXPECT_EQ(c_f[i], c_r[i]) << "head fwd item " << i;
    }
  }
  {
    BatchedFixture fx({6, 0, 3}, 240, 1, rng);
    std::vector<std::vector<double>> c_f, c2_f, c_r, c2_r;
    auto fused = fx.make_items(c_f, c2_f, true);
    auto ref = fx.make_items(c_r, c2_r, true);
    gemm_batched(fused.data(), static_cast<int>(fused.size()), fx.b.data(),
                 static_cast<const double*>(nullptr),
                 static_cast<const double*>(nullptr), fx.n, fx.k,
                 Epilogue::GradSkip);
    for (auto& it : ref) {
      if (it.m > 0) {
        batched_item_ref(it, fx.b.data(), nullptr, nullptr, fx.n, fx.k,
                         Epilogue::GradSkip);
      }
    }
    for (std::size_t i = 0; i < fused.size(); ++i) {
      EXPECT_EQ(c_f[i], c_r[i]) << "head bwd item " << i;
      EXPECT_EQ(c2_f[i], c2_r[i]) << "head bwd item " << i;
    }
  }
}

TEST(Transpose, RoundTrip) {
  Rng rng(5);
  const int r = 7, c = 13;
  const auto m = random_matrix(r, c, rng);
  std::vector<double> t(m.size()), back(m.size());
  transpose(m.data(), t.data(), r, c);
  transpose(t.data(), back.data(), c, r);
  EXPECT_EQ(back, m);
  // Spot-check the transposed layout.
  EXPECT_DOUBLE_EQ(t[static_cast<std::size_t>(3) * r + 2],
                   m[static_cast<std::size_t>(2) * c + 3]);
}

}  // namespace
}  // namespace dpmd::gemm
